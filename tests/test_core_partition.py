"""Unit tests for the incremental partition tree and the Adaptor."""

from __future__ import annotations

import pytest

from repro.core.adaptor import Adaptor
from repro.core.config import OdysseyConfig
from repro.core.partition import PartitionTree, partition_file_name
from repro.geometry.box import Box

from tests.conftest import make_dataset


@pytest.fixture
def config() -> OdysseyConfig:
    return OdysseyConfig(partitions_per_level=8, refinement_threshold=4.0)


@pytest.fixture
def adaptor(config) -> Adaptor:
    return Adaptor(config)


@pytest.fixture
def dataset(disk, universe):
    return make_dataset(disk, universe, dataset_id=0, count=600, seed=17)


@pytest.fixture
def tree(adaptor, dataset) -> PartitionTree:
    tree = adaptor.create_tree(dataset)
    adaptor.initialize(tree)
    return tree


class TestInitialization:
    def test_uninitialised_tree(self, adaptor, dataset):
        tree = adaptor.create_tree(dataset)
        assert not tree.is_initialized
        assert tree.n_partitions == 0
        with pytest.raises(RuntimeError):
            tree.leaves_overlapping(dataset.universe)

    def test_first_level_created(self, tree, config):
        assert tree.is_initialized
        assert tree.n_partitions == config.partitions_per_level
        assert tree.depth == 1
        assert tree.partitions_per_level == 8
        assert tree.splits_per_dim == 2

    def test_all_objects_assigned_exactly_once(self, tree, dataset):
        assert tree.n_objects == dataset.n_objects
        assert tree.total_stored_objects() == dataset.n_objects

    def test_objects_in_correct_partitions(self, tree):
        for leaf in tree.leaves():
            for obj in tree.read_partition(leaf):
                assert leaf.box.contains_point(obj.center)

    def test_partitions_cover_universe(self, tree, universe):
        leaves = list(tree.leaves())
        assert Box.bounding([leaf.box for leaf in leaves]) == universe
        total = sum(leaf.box.volume() for leaf in leaves)
        assert total == pytest.approx(universe.volume())

    def test_max_extent_positive(self, tree):
        assert all(extent > 0 for extent in tree.max_extent)

    def test_double_initialization_fails(self, adaptor, tree):
        with pytest.raises(RuntimeError):
            adaptor.initialize(tree)

    def test_initialization_scans_raw_file_once(self, adaptor, dataset, disk):
        tree = adaptor.create_tree(dataset)
        disk.reset_head()
        before = disk.stats_snapshot()
        adaptor.initialize(tree)
        delta = disk.stats.delta_since(before)
        assert delta.pages_read >= dataset.size_pages()
        assert delta.pages_written >= dataset.size_pages() - 1

    def test_partition_file_name_convention(self):
        assert partition_file_name("x") == "odyssey/x.partitions"


class TestSearch:
    def test_leaves_overlapping_small_query(self, tree):
        query = Box.cube((25.0, 25.0, 25.0), 10.0)
        leaves = tree.leaves_overlapping(query)
        assert leaves
        assert all(leaf.box.intersects(query) for leaf in leaves)

    def test_leaves_overlapping_universe_returns_all(self, tree, universe):
        assert len(tree.leaves_overlapping(universe)) == tree.n_partitions

    def test_node_lookup(self, tree):
        leaf = next(tree.leaves())
        assert tree.node(leaf.key) is leaf
        assert tree.has_leaf(leaf.key)
        with pytest.raises(KeyError):
            tree.node((99, 99))

    def test_describe(self, tree):
        summary = tree.describe()
        assert summary["n_objects"] == tree.n_objects
        assert summary["n_partitions"] == tree.n_partitions
        assert summary["depth"] == 1


class TestRefinement:
    def test_refine_splits_leaf_into_children(self, adaptor, tree):
        leaf = max(tree.leaves(), key=lambda node: node.n_objects)
        n_before = leaf.n_objects
        children = adaptor.refine(tree, leaf)
        assert len(children) == tree.partitions_per_level
        assert not leaf.is_leaf
        assert sum(child.n_objects for child in children) == n_before
        assert tree.depth == 2

    def test_refine_preserves_objects(self, adaptor, tree):
        leaf = max(tree.leaves(), key=lambda node: node.n_objects)
        before = {o.key() for o in tree.read_partition(leaf)}
        children = adaptor.refine(tree, leaf)
        after = {o.key() for child in children for o in tree.read_partition(child)}
        assert after == before

    def test_refine_assigns_children_by_center(self, adaptor, tree):
        leaf = max(tree.leaves(), key=lambda node: node.n_objects)
        children = adaptor.refine(tree, leaf)
        for child in children:
            for obj in tree.read_partition(child):
                assert child.box.contains_point(obj.center)

    def test_refine_reuses_pages_in_place(self, adaptor, tree):
        leaf = max(tree.leaves(), key=lambda node: node.n_objects)
        pages_before = tree.file.num_pages()
        parent_pages = set(leaf.run.page_numbers())
        children = adaptor.refine(tree, leaf)
        child_pages = {p for child in children if child.run for p in child.run.page_numbers()}
        # The parent's pages are reused by the children (in-place update).
        assert parent_pages & child_pages
        # The file grows by at most the extra pages needed for per-child slack.
        assert tree.file.num_pages() >= pages_before

    def test_refine_non_leaf_fails(self, adaptor, tree):
        leaf = max(tree.leaves(), key=lambda node: node.n_objects)
        adaptor.refine(tree, leaf)
        with pytest.raises(ValueError):
            adaptor.refine(tree, leaf)

    def test_total_objects_invariant_after_many_refinements(self, adaptor, tree, dataset):
        for _ in range(3):
            leaf = max(tree.leaves(), key=lambda node: node.n_objects)
            if leaf.n_objects == 0:
                break
            adaptor.refine(tree, leaf)
        assert tree.total_stored_objects() == dataset.n_objects


class TestMaybeRefine:
    def test_refines_when_ratio_exceeds_threshold(self, adaptor, tree):
        leaf = max(tree.leaves(), key=lambda node: node.n_objects)
        tiny_query = Box.cube(leaf.box.center, leaf.box.side(0) / 10.0)
        outcome = adaptor.maybe_refine(tree, leaf, tiny_query)
        assert outcome.refined
        assert outcome.levels == 1

    def test_does_not_refine_below_threshold(self, adaptor, tree):
        leaf = max(tree.leaves(), key=lambda node: node.n_objects)
        big_query = Box.cube(leaf.box.center, leaf.box.side(0))
        outcome = adaptor.maybe_refine(tree, leaf, big_query)
        assert not outcome.refined
        assert outcome.reason == "below refinement threshold"

    def test_does_not_refine_empty_partition(self, adaptor, config, disk, universe):
        # A dataset whose objects all sit in one corner leaves most
        # partitions empty.
        from tests.conftest import make_object
        from repro.data.dataset import Dataset

        objects = [make_object(i, 0, (1.0, 1.0, 1.0), extent=0.5) for i in range(10)]
        dataset = Dataset.create(disk, 0, "corner_ds", objects, universe)
        tree = adaptor.create_tree(dataset)
        adaptor.initialize(tree)
        empty_leaf = next(leaf for leaf in tree.leaves() if leaf.n_objects == 0)
        outcome = adaptor.maybe_refine(tree, empty_leaf, Box.cube((90.0, 90.0, 90.0), 1.0))
        assert not outcome.refined
        assert outcome.reason == "empty partition"

    def test_respects_max_depth(self, dataset):
        config = OdysseyConfig(partitions_per_level=8, max_depth=1)
        adaptor = Adaptor(config)
        tree = adaptor.create_tree(dataset)
        adaptor.initialize(tree)
        leaf = max(tree.leaves(), key=lambda node: node.n_objects)
        outcome = adaptor.maybe_refine(tree, leaf, Box.cube(leaf.box.center, 0.01))
        assert not outcome.refined
        assert outcome.reason == "max depth reached"

    def test_multiple_levels_per_query(self, dataset):
        config = OdysseyConfig(partitions_per_level=8, refine_levels_per_query=2)
        adaptor = Adaptor(config)
        tree = adaptor.create_tree(dataset)
        adaptor.initialize(tree)
        leaf = max(tree.leaves(), key=lambda node: node.n_objects)
        outcome = adaptor.maybe_refine(tree, leaf, Box.cube(leaf.box.center, 0.5))
        assert outcome.refined
        assert outcome.levels == 2
        assert tree.depth == 3

    def test_refinement_disabled(self, dataset):
        config = OdysseyConfig(partitions_per_level=8, refine_levels_per_query=0)
        adaptor = Adaptor(config)
        tree = adaptor.create_tree(dataset)
        adaptor.initialize(tree)
        leaf = max(tree.leaves(), key=lambda node: node.n_objects)
        outcome = adaptor.maybe_refine(tree, leaf, Box.cube(leaf.box.center, 0.01))
        assert not outcome.refined
