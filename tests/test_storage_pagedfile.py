"""Unit tests for PagedFile: groups, in-place rewrites, scans."""

from __future__ import annotations

import pytest

from repro.data.spatial_object import spatial_object_codec
from repro.storage.codec import FixedRecordCodec
from repro.storage.cost_model import DiskModel
from repro.storage.disk import Disk
from repro.storage.pagedfile import PageExtent, PagedFile, StoredRun, coalesce_pages

from tests.conftest import make_random_objects
from repro.geometry.box import Box


@pytest.fixture
def disk() -> Disk:
    return Disk(model=DiskModel(seek_time_s=1e-3), buffer_pages=0)


@pytest.fixture
def int_file(disk) -> PagedFile[int]:
    codec = FixedRecordCodec("<q", lambda v: (v,), lambda f: f[0])
    return PagedFile(disk, "ints.dat", codec)


class TestPageExtent:
    def test_validation(self):
        with pytest.raises(ValueError):
            PageExtent(-1, 1)
        with pytest.raises(ValueError):
            PageExtent(0, 0)

    def test_pages_and_end(self):
        extent = PageExtent(3, 4)
        assert list(extent.pages()) == [3, 4, 5, 6]
        assert extent.end == 7

    def test_coalesce(self):
        assert coalesce_pages([5, 1, 2, 3, 7]) == [
            PageExtent(1, 3),
            PageExtent(5, 1),
            PageExtent(7, 1),
        ]
        assert coalesce_pages([]) == []


class TestStoredRun:
    def test_n_pages(self):
        run = StoredRun(extents=(PageExtent(0, 2), PageExtent(5, 1)), n_records=100)
        assert run.n_pages == 3
        assert run.page_numbers() == [0, 1, 5]

    def test_negative_records_rejected(self):
        with pytest.raises(ValueError):
            StoredRun(extents=(), n_records=-1)


class TestAppendAndRead:
    def test_roundtrip_small_group(self, int_file):
        run = int_file.append_group([1, 2, 3])
        assert run.n_records == 3
        assert int_file.read_group(run) == [1, 2, 3]

    def test_roundtrip_multi_page_group(self, int_file):
        records = list(range(2000))
        run = int_file.append_group(records)
        assert run.n_pages == int_file.pages_needed(2000)
        assert sorted(int_file.read_group(run)) == records

    def test_empty_group(self, int_file):
        run = int_file.append_group([])
        assert run.n_records == 0
        assert int_file.read_group(run) == []

    def test_groups_do_not_share_pages(self, int_file):
        run_a = int_file.append_group([1, 2])
        run_b = int_file.append_group([3, 4])
        assert set(run_a.page_numbers()).isdisjoint(run_b.page_numbers())

    def test_read_groups_concatenates(self, int_file):
        run_a = int_file.append_group([1, 2])
        run_b = int_file.append_group([3])
        assert sorted(int_file.read_groups([run_a, run_b])) == [1, 2, 3]

    def test_scan_returns_everything(self, int_file):
        int_file.append_group(list(range(100)))
        int_file.append_group(list(range(100, 150)))
        assert sorted(int_file.scan()) == list(range(150))

    def test_scan_missing_file_is_empty(self, int_file):
        assert list(int_file.scan()) == []

    def test_read_page_records(self, int_file):
        run = int_file.append_group([7, 8, 9])
        page = run.extents[0].start
        assert int_file.read_page_records(page) == [7, 8, 9]

    def test_delete(self, int_file):
        int_file.append_group([1])
        int_file.delete()
        assert not int_file.exists()
        assert int_file.num_pages() == 0


class TestWriteGroupsInPlace:
    def test_reuses_parent_pages_first(self, int_file):
        parent = int_file.append_group(list(range(2500)))  # five pages (511/page)
        pages_before = int_file.num_pages()
        groups = [list(range(i * 10, i * 10 + 10)) for i in range(4)]
        runs = int_file.write_groups(groups, reuse=parent.extents)
        # Four small groups (one page each) fit in the reused pages: no growth.
        assert int_file.num_pages() == pages_before
        reused_pages = set(parent.page_numbers())
        for run in runs:
            assert set(run.page_numbers()) <= reused_pages

    def test_appends_overflow_pages(self, int_file):
        parent = int_file.append_group(list(range(300)))
        pages_before = int_file.num_pages()
        # Children together need more pages than the parent had (each group
        # occupies whole pages, so 10 groups of 300 records need ~10x).
        groups = [list(range(300)) for _ in range(10)]
        runs = int_file.write_groups(groups, reuse=parent.extents)
        assert int_file.num_pages() > pages_before
        for group, run in zip(groups, runs):
            assert sorted(int_file.read_group(run)) == sorted(group)

    def test_content_preserved_across_rewrite(self, int_file):
        parent_records = list(range(1000))
        parent = int_file.append_group(parent_records)
        groups = [parent_records[:400], parent_records[400:750], parent_records[750:]]
        runs = int_file.write_groups(groups, reuse=parent.extents)
        recovered = sorted(
            record for run in runs for record in int_file.read_group(run)
        )
        assert recovered == parent_records

    def test_empty_groups_get_empty_runs(self, int_file):
        runs = int_file.write_groups([[], [1, 2], []])
        assert runs[0].n_records == 0
        assert runs[2].n_records == 0
        assert int_file.read_group(runs[1]) == [1, 2]

    def test_without_reuse_behaves_like_append(self, int_file):
        runs = int_file.write_groups([[1], [2, 3]])
        assert int_file.read_group(runs[0]) == [1]
        assert sorted(int_file.read_group(runs[1])) == [2, 3]

    def test_reuse_overflow_split_assigns_exact_pages(self, int_file):
        """A group straddling the reuse boundary gets reused pages first and
        its missing tail from the bulk append, in group order."""
        parent = int_file.append_group(list(range(1022)))  # pages 0,1 (511/page)
        assert parent.page_numbers() == [0, 1]
        tail_start = int_file.num_pages()
        # Three one-page groups: the first reuses page 0, the second reuses
        # page 1, the third finds the free list empty and overflows entirely.
        groups = [list(range(400)), list(range(400, 800)), list(range(800, 1200))]
        runs = int_file.write_groups(groups, reuse=parent.extents)
        assert runs[0].page_numbers() == [0]
        assert runs[1].page_numbers() == [1]
        assert runs[2].page_numbers() == [tail_start]
        for group, run in zip(groups, runs):
            assert int_file.read_group(run) == group

    def test_single_group_split_between_reuse_and_overflow(self, int_file):
        """One group larger than the reused extents combines both kinds of pages."""
        parent = int_file.append_group(list(range(511)))  # exactly one page
        tail_start = int_file.num_pages()
        records = list(range(1500))  # needs three pages
        (run,) = int_file.write_groups([records], reuse=parent.extents)
        assert run.page_numbers() == [0, tail_start, tail_start + 1]
        assert int_file.read_group(run) == records


class TestSpatialObjectFile:
    def test_spatial_objects_roundtrip(self, disk):
        universe = Box((0.0, 0.0, 0.0), (10.0, 10.0, 10.0))
        objects = make_random_objects(universe, 200, dataset_id=4, seed=1)
        file = PagedFile(disk, "objs.dat", spatial_object_codec(3))
        run = file.append_group(objects)
        read_back = file.read_group(run)
        assert {o.key() for o in read_back} == {o.key() for o in objects}
