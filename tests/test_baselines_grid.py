"""Unit tests for the static uniform Grid index."""

from __future__ import annotations

import pytest

from repro.baselines.grid import GridIndex
from repro.baselines.interface import result_keys
from repro.geometry.box import Box

from tests.conftest import make_dataset


@pytest.fixture
def dataset(disk, universe):
    return make_dataset(disk, universe, dataset_id=0, count=500, seed=7)


class TestBuild:
    def test_build_indexes_all_objects(self, disk, universe, dataset):
        grid = GridIndex(disk, "g", universe, cells_per_dim=4)
        grid.build([dataset])
        assert grid.is_built
        assert grid.n_objects == dataset.n_objects
        assert grid.occupied_cells() <= grid.n_cells
        assert grid.n_cells == 64

    def test_build_twice_fails(self, disk, universe, dataset):
        grid = GridIndex(disk, "g", universe, cells_per_dim=4)
        grid.build([dataset])
        with pytest.raises(RuntimeError):
            grid.build([dataset])

    def test_query_before_build_fails(self, disk, universe):
        grid = GridIndex(disk, "g", universe, cells_per_dim=4)
        with pytest.raises(RuntimeError):
            grid.query(Box.cube((50.0, 50.0, 50.0), 10.0))

    def test_max_extent_tracked(self, disk, universe, dataset):
        grid = GridIndex(disk, "g", universe, cells_per_dim=4)
        grid.build([dataset])
        expected = tuple(
            max(o.box.extents[axis] for o in dataset.read_all()) for axis in range(3)
        )
        assert grid.max_extent == pytest.approx(expected)

    def test_small_build_buffer_creates_multiple_runs(self, disk, universe, dataset):
        grid = GridIndex(disk, "g", universe, cells_per_dim=2, build_buffer_objects=50)
        grid.build([dataset])
        # with a 50-object buffer and 500 objects there must be several flushes,
        # so at least one cell is split over multiple runs
        assert any(len(state.runs) > 1 for state in grid._cells.values())

    def test_invalid_configuration(self, disk, universe):
        with pytest.raises(ValueError):
            GridIndex(disk, "g", universe, cells_per_dim=0)
        with pytest.raises(ValueError):
            GridIndex(disk, "g", universe, cells_per_dim=(4, 4))
        with pytest.raises(ValueError):
            GridIndex(disk, "g", universe, build_buffer_objects=0)


class TestQuery:
    @pytest.mark.parametrize("cells", [2, 4, (2, 4, 8)])
    def test_query_matches_bruteforce(self, disk, universe, dataset, cells):
        grid = GridIndex(disk, "g", universe, cells_per_dim=cells)
        grid.build([dataset])
        for center, side in [((50.0, 50.0, 50.0), 20.0), ((10.0, 90.0, 30.0), 15.0)]:
            query = Box.cube(center, side)
            expected = {o.key() for o in dataset.read_all() if o.intersects(query)}
            assert result_keys(grid.query(query)) == expected

    def test_query_covering_universe_returns_all(self, disk, universe, dataset):
        grid = GridIndex(disk, "g", universe, cells_per_dim=4)
        grid.build([dataset])
        assert len(grid.query(universe)) == dataset.n_objects

    def test_query_in_empty_region_is_cheap(self, disk, universe):
        # All objects in one corner; a query in the opposite corner reads nothing.
        from tests.conftest import make_object

        objects = [make_object(i, 0, (5.0, 5.0, 5.0)) for i in range(10)]
        from repro.data.dataset import Dataset

        dataset = Dataset.create(disk, 0, "corner", objects, universe)
        grid = GridIndex(disk, "g", universe, cells_per_dim=4)
        grid.build([dataset])
        before = disk.stats_snapshot()
        result = grid.query(Box.cube((90.0, 90.0, 90.0), 5.0))
        assert result == []
        assert disk.stats.delta_since(before).pages_read == 0

    def test_drop(self, disk, universe, dataset):
        grid = GridIndex(disk, "g", universe, cells_per_dim=4)
        grid.build([dataset])
        grid.drop()
        assert not grid.is_built
        assert grid.n_objects == 0

    def test_multi_dataset_build(self, disk, universe):
        ds_a = make_dataset(disk, universe, dataset_id=0, count=100, seed=1, name="ga")
        ds_b = make_dataset(disk, universe, dataset_id=1, count=100, seed=2, name="gb")
        grid = GridIndex(disk, "g", universe, cells_per_dim=4)
        grid.build([ds_a, ds_b])
        assert grid.n_objects == 200
        query = Box.cube((50.0, 50.0, 50.0), 40.0)
        expected = {
            o.key()
            for o in ds_a.read_all() + ds_b.read_all()
            if o.intersects(query)
        }
        assert result_keys(grid.query(query)) == expected
