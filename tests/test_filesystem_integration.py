"""Integration tests against the real-filesystem backend.

Most tests use the in-memory backend for speed; these verify that the whole
stack (raw datasets, static indexes, Space Odyssey with in-place refinement
and merge files) behaves identically when pages live in real files.
"""

from __future__ import annotations

import pytest

from repro.baselines.grid import GridIndex
from repro.baselines.interface import BruteForceScan, result_keys
from repro.core.config import OdysseyConfig
from repro.core.odyssey import SpaceOdyssey
from repro.data.dataset import Dataset, DatasetCatalog
from repro.geometry.box import Box
from repro.storage.backend import FileSystemBackend
from repro.storage.cost_model import DiskModel
from repro.storage.disk import Disk

from tests.conftest import make_random_objects

UNIVERSE = Box((0.0, 0.0, 0.0), (100.0, 100.0, 100.0))


@pytest.fixture
def fs_disk(tmp_path) -> Disk:
    backend = FileSystemBackend(tmp_path / "pages")
    return Disk(backend=backend, model=DiskModel(), buffer_pages=16)


@pytest.fixture
def fs_catalog(fs_disk) -> DatasetCatalog:
    datasets = [
        Dataset.create(
            fs_disk, i, f"fsds_{i}", make_random_objects(UNIVERSE, 200, i, seed=60 + i), UNIVERSE
        )
        for i in range(3)
    ]
    return DatasetCatalog(datasets)


def test_raw_files_persist_on_disk(tmp_path, fs_disk, fs_catalog):
    files = list((tmp_path / "pages").glob("*.pages"))
    assert len(files) == 3
    assert all(path.stat().st_size > 0 for path in files)


def test_grid_on_filesystem_matches_bruteforce(fs_disk, fs_catalog):
    grid = GridIndex(fs_disk, "fs_grid", UNIVERSE, cells_per_dim=4)
    grid.build(fs_catalog.datasets())
    oracle = BruteForceScan(fs_catalog)
    query = Box.cube((50.0, 50.0, 50.0), 30.0)
    assert result_keys(grid.query(query)) == result_keys(oracle.query(query, [0, 1, 2]))


def test_odyssey_on_filesystem_end_to_end(fs_disk, fs_catalog, tmp_path):
    config = OdysseyConfig(
        partitions_per_level=8,
        merge_threshold=1,
        min_merge_combination=3,
        merge_partition_min_hits=1,
        merge_only_converged=False,
    )
    odyssey = SpaceOdyssey(fs_catalog, config)
    oracle = BruteForceScan(fs_catalog)
    query = Box.cube((50.0, 50.0, 50.0), 10.0)
    for _ in range(5):
        assert result_keys(odyssey.query(query, [0, 1, 2])) == result_keys(
            oracle.query(query, [0, 1, 2])
        )
    # Partition files and the merge file were materialised as real files.
    file_names = fs_disk.list_files()
    assert any(name.startswith("odyssey_") for name in file_names)
    assert any(name.startswith("merge_") for name in file_names)
    # Refinement happened in place on the real files too.
    assert odyssey.trees[0].depth >= 2
