"""Unit tests for the FLAT baseline (regions, adjacency, seed-and-crawl)."""

from __future__ import annotations

import pytest

from repro.baselines.flat import (
    FLATIndex,
    compute_region_adjacency,
    tile_with_regions,
)
from repro.baselines.interface import result_keys
from repro.geometry.box import Box

from tests.conftest import make_dataset, make_random_objects


@pytest.fixture
def dataset(disk, universe):
    return make_dataset(disk, universe, dataset_id=0, count=700, seed=21)


class TestTileWithRegions:
    def test_regions_partition_universe(self, universe):
        objects = make_random_objects(universe, 500, seed=1)
        tiles = tile_with_regions(objects, leaf_capacity=40, universe=universe)
        regions = [region for _, region in tiles]
        total = sum(region.volume() for region in regions)
        assert total == pytest.approx(universe.volume(), rel=1e-9)

    def test_every_object_center_in_its_region(self, universe):
        objects = make_random_objects(universe, 500, seed=2)
        tiles = tile_with_regions(objects, leaf_capacity=40, universe=universe)
        for leaf_objects, region in tiles:
            for obj in leaf_objects:
                assert region.contains_point(obj.center)

    def test_all_objects_assigned_once(self, universe):
        objects = make_random_objects(universe, 300, seed=3)
        tiles = tile_with_regions(objects, leaf_capacity=25, universe=universe)
        assigned = [o.oid for leaf_objects, _ in tiles for o in leaf_objects]
        assert sorted(assigned) == sorted(o.oid for o in objects)

    def test_empty_input_covers_universe(self, universe):
        tiles = tile_with_regions([], leaf_capacity=10, universe=universe)
        assert len(tiles) == 1
        assert tiles[0][1] == universe

    def test_leaf_capacity_respected(self, universe):
        objects = make_random_objects(universe, 400, seed=4)
        tiles = tile_with_regions(objects, leaf_capacity=30, universe=universe)
        # The last axis tiles exactly by capacity, so no leaf exceeds it.
        assert all(len(leaf) <= 30 for leaf, _ in tiles)


class TestRegionAdjacency:
    def test_adjacent_grid_cells_are_neighbours(self):
        universe = Box((0.0, 0.0), (4.0, 4.0))
        regions = universe.split_grid(2)
        adjacency = compute_region_adjacency(regions)
        # All four quadrants touch each other (corner/edge sharing).
        for index in range(4):
            assert adjacency[index] == set(range(4)) - {index}

    def test_disjoint_regions_not_neighbours(self):
        regions = [Box((0.0,), (1.0,)), Box((5.0,), (6.0,))]
        adjacency = compute_region_adjacency(regions)
        assert adjacency[0] == set()
        assert adjacency[1] == set()

    def test_empty_input(self):
        assert compute_region_adjacency([]) == {}


class TestFLATIndex:
    def test_build_structure(self, disk, universe, dataset):
        flat = FLATIndex(disk, "f", universe)
        flat.build([dataset])
        assert flat.is_built
        assert flat.n_objects == dataset.n_objects
        assert flat.n_leaves == len(flat.regions)
        # Regions tile the universe.
        total = sum(region.volume() for region in flat.regions)
        assert total == pytest.approx(universe.volume(), rel=1e-9)

    def test_query_matches_bruteforce(self, disk, universe, dataset):
        flat = FLATIndex(disk, "f", universe)
        flat.build([dataset])
        raw = dataset.read_all()
        for center, side in [
            ((50.0, 50.0, 50.0), 20.0),
            ((10.0, 10.0, 90.0), 12.0),
            ((99.0, 1.0, 50.0), 6.0),
        ]:
            query = Box.cube(center, side)
            expected = {o.key() for o in raw if o.intersects(query)}
            assert result_keys(flat.query(query)) == expected

    def test_query_covering_universe(self, disk, universe, dataset):
        flat = FLATIndex(disk, "f", universe)
        flat.build([dataset])
        assert len(flat.query(universe)) == dataset.n_objects

    def test_build_twice_fails(self, disk, universe, dataset):
        flat = FLATIndex(disk, "f", universe)
        flat.build([dataset])
        with pytest.raises(RuntimeError):
            flat.build([dataset])

    def test_query_before_build_fails(self, disk, universe):
        flat = FLATIndex(disk, "f", universe)
        with pytest.raises(RuntimeError):
            flat.query(Box.cube((1.0, 1.0, 1.0), 1.0))

    def test_empty_build(self, disk, universe):
        from repro.data.dataset import Dataset

        empty = Dataset.create(disk, 0, "empty_f", [], universe)
        flat = FLATIndex(disk, "f", universe)
        flat.build([empty])
        assert flat.query(universe) == []

    def test_build_costs_more_than_rtree(self, universe):
        """FLAT's extra neighbourhood pass makes it the slowest build (paper C2)."""
        from repro.baselines.rtree import STRRTree
        from repro.storage.cost_model import DiskModel
        from repro.storage.disk import Disk

        costs = {}
        for kind in ("flat", "rtree"):
            disk = Disk(model=DiskModel(), buffer_pages=0)
            dataset = make_dataset(disk, universe, count=1500, seed=5)
            before = disk.stats_snapshot()
            index = (
                FLATIndex(disk, "f", universe, build_memory_pages=8)
                if kind == "flat"
                else STRRTree(disk, "r", universe, build_memory_pages=8)
            )
            index.build([dataset])
            costs[kind] = disk.stats.delta_since(before).simulated_seconds
        assert costs["flat"] > costs["rtree"]

    def test_drop(self, disk, universe, dataset):
        flat = FLATIndex(disk, "f", universe)
        flat.build([dataset])
        flat.drop()
        assert not flat.is_built
        assert flat.n_leaves == 0
