"""Concurrency battery for the epoch-snapshot (MVCC) read path.

Three properties are exercised, deterministically and under real thread
interleavings:

* **stale but consistent** — a reader pinned to an old epoch sees exactly
  the engine state captured at pin time: leaf runs decode to the same
  records even after refinement overwrote their pages in place, and merge
  segments stay readable even after eviction deleted their file (both are
  served from retained pre-image pages);
* **exactness under concurrency** — snapshot batches racing a
  sequentially-adapting mutator return precisely the answers a pristine
  engine gives for the same windows (query answers depend only on the
  data and the window — adaptation changes how data is read, never what
  matches);
* **refcounted release** — once all pins are dropped and the engine
  quiesces, the epoch chain collapses to the single current epoch and
  every retained pre-image page is freed (no leaked snapshots).

The scenario parameters are chosen so adaptation actually churns: small
windows over coarse initial partitions force refinement splits (in-place
page overwrites), and a tight merge space budget forces merge-file
evictions (file deletions).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.bench.runner import generate_workload
from repro.core.config import OdysseyConfig
from repro.core.odyssey import SpaceOdyssey
from repro.data.suite import build_benchmark_suite
from repro.storage.cost_model import DiskModel

from tests.test_batch_differential import packed_hits


def _churny_suite(n_datasets: int = 2, objects: int = 2500):
    """A suite whose workloads (below) trigger heavy refinement."""
    return build_benchmark_suite(
        n_datasets=n_datasets,
        objects_per_dataset=objects,
        seed=7,
        dimension=2,
        buffer_pages=16,
        model=DiskModel(seek_time_s=1e-4),
    )


def _workload(suite, n_queries: int, seed: int = 3, datasets_per_query: int = 2):
    return list(
        generate_workload(
            suite.universe,
            suite.catalog.dataset_ids(),
            n_queries,
            seed=seed,
            datasets_per_query=datasets_per_query,
            volume_fraction=1e-3,
        )
    )


CONFIG = OdysseyConfig(refinement_threshold=2.0, merge_threshold=1)


class TestStaleButConsistent:
    def test_pinned_epoch_serves_pre_adaptation_state(self):
        """Leaf runs of a pinned epoch decode to the records captured at
        pin time, even after refinement overwrote their pages in place."""
        suite = _churny_suite()
        workload = _workload(suite, 40)
        engine = SpaceOdyssey(suite.fork().catalog, CONFIG)
        engine.query(workload[0].box, workload[0].dataset_ids)  # init trees
        manager = engine.epochs
        pinned = manager.pin()
        # Capture every pinned leaf run's records through the live path
        # (nothing has mutated yet, so this IS the pinned content).
        captured = {}
        for dataset_id, snapshot in pinned.trees.items():
            for leaf_index, run in enumerate(snapshot.runs):
                if run is not None and run.n_records:
                    captured[(dataset_id, leaf_index)] = snapshot.file.read_group_array(
                        run
                    ).copy()
        # Adapt hard: refinement splits overwrite partition pages in place.
        for query in workload[1:30]:
            engine.query(query.box, query.dataset_ids)
        versions = {d: t.version for d, t in engine.trees.items()}
        assert any(v > 1 for v in versions.values()), (
            f"scenario did not refine (versions {versions}); the test needs churn"
        )
        assert manager.retained_total() > 0, (
            "refinement overwrote no pages? retention should have pre-images"
        )
        # The pinned snapshot must replay byte-identically via the overlay.
        for (dataset_id, leaf_index), expected in captured.items():
            snapshot = pinned.trees[dataset_id]
            run = snapshot.runs[leaf_index]
            got = snapshot.file.read_group_array_at(run, pinned.lookup_page)
            assert np.array_equal(got, expected), (
                f"dataset {dataset_id} leaf {leaf_index}: pinned read diverged "
                f"from pin-time content"
            )
        manager.unpin(pinned)
        assert manager.chain_length() == 1
        assert manager.retained_total() == 0

    def test_pin_survives_merge_file_eviction(self):
        """Merge segments of a pinned epoch stay readable after eviction
        deleted their merge file — the whole file is retained as
        pre-images, so the pinned merge map is never torn."""
        suite = _churny_suite(n_datasets=3)
        workload = _workload(suite, 80, seed=5, datasets_per_query=2)
        config = OdysseyConfig(
            refinement_threshold=2.0,
            merge_threshold=1,
            min_merge_combination=2,
            merge_partition_min_hits=1,
            merge_only_converged=False,
            merge_space_budget_pages=8,
        )
        engine = SpaceOdyssey(suite.fork().catalog, config)
        manager = engine.epochs
        pinned = None
        evictions_at_pin = 0
        for query in workload:
            engine.query(query.box, query.dataset_ids)
            if pinned is None and len(engine.merge_directory) > 0:
                pinned = manager.pin()  # holds a merge file that will die
                evictions_at_pin = engine.merger.evictions
        assert pinned is not None, "scenario produced no merge files; needs churn"
        assert engine.merger.evictions > evictions_at_pin, (
            "scenario evicted no merge file after the pin; needs a tighter budget"
        )
        # Every merge segment of the pinned directory must decode, even for
        # files the merger has since deleted from the live disk.
        segments = 0
        for info in pinned.directory.all_files():
            file = pinned.merge_files[info.combination]
            for per_dataset in info.entries.values():
                for run in per_dataset.values():
                    records = file.read_group_array_at(run, pinned.lookup_page)
                    assert len(records) == run.n_records
                    segments += 1
        assert segments > 0, "pinned directory had no segments to verify"
        manager.unpin(pinned)
        assert manager.chain_length() == 1
        assert manager.retained_total() == 0


class TestConcurrentStress:
    @pytest.mark.parametrize("readers", [2])
    def test_snapshot_batches_racing_adaptation_stay_exact(self, readers):
        """Reader threads running snapshot batches against an engine whose
        adaptive state a mutator thread is churning get exact answers —
        and afterwards the epoch chain is fully released."""
        suite = _churny_suite()
        mutator_load = _workload(suite, 60)
        reader_load = _workload(suite, 24, seed=11)
        truth_engine = SpaceOdyssey(suite.fork().catalog, CONFIG)
        truth = [
            packed_hits(
                truth_engine, truth_engine.query(query.box, query.dataset_ids)
            )
            for query in reader_load
        ]

        engine = SpaceOdyssey(suite.fork().catalog, CONFIG)
        engine.query(mutator_load[0].box, mutator_load[0].dataset_ids)
        errors: list[BaseException] = []
        start = threading.Barrier(readers + 1)

        def mutate() -> None:
            try:
                start.wait()
                for query in mutator_load[1:]:
                    engine.query(query.box, query.dataset_ids)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def read(offset: int) -> None:
            try:
                start.wait()
                for round_no in range(3):
                    order = (
                        reader_load[offset:] + reader_load[:offset]
                        if round_no % 2
                        else reader_load
                    )
                    indices = (
                        list(range(offset, len(reader_load))) + list(range(offset))
                        if round_no % 2
                        else list(range(len(reader_load)))
                    )
                    for chunk_start in range(0, len(order), 6):
                        chunk = order[chunk_start : chunk_start + 6]
                        result = engine.query_batch(chunk, snapshot=True)
                        for position, hits in enumerate(result.results):
                            index = indices[chunk_start + position]
                            assert packed_hits(engine, hits) == truth[index], (
                                f"reader query {index} returned wrong hits "
                                f"under concurrent adaptation"
                            )
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=mutate, daemon=True)] + [
            threading.Thread(target=read, args=(r * 5,), daemon=True)
            for r in range(readers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not any(thread.is_alive() for thread in threads), "stress hung"
        assert not errors, f"concurrent stress raised: {errors!r}"

        manager = engine.epochs
        assert manager.pinned_total() == 0, "a pin leaked"
        assert manager.chain_length() == 1, (
            f"epoch chain not released: {manager.chain_length()} epochs alive"
        )
        assert manager.retained_total() == 0, "retained pre-image pages leaked"


class TestRefcountDiscipline:
    def test_unpinned_epoch_freed_pinned_epoch_kept(self):
        suite = _churny_suite(objects=600)
        workload = _workload(suite, 10)
        engine = SpaceOdyssey(suite.fork().catalog, CONFIG)
        engine.query(workload[0].box, workload[0].dataset_ids)
        manager = engine.epochs
        old = manager.pin()
        for query in workload[1:5]:
            engine.query(query.box, query.dataset_ids)
        # The pinned epoch anchors the chain: everything from it forward
        # stays alive, no matter how many epochs were published since.
        assert manager.chain_length() >= 5
        current = manager.pin()
        manager.unpin(old)
        assert manager.chain_length() == 1, "chain must collapse to current"
        manager.unpin(current)
        assert manager.chain_length() == 1
        assert manager.pinned_total() == 0

    def test_unbalanced_unpin_rejected(self):
        suite = _churny_suite(objects=300)
        engine = SpaceOdyssey(suite.fork().catalog, CONFIG)
        manager = engine.epochs
        epoch = manager.pin()
        manager.unpin(epoch)
        with pytest.raises(RuntimeError):
            manager.unpin(epoch)

    def test_snapshot_reads_disabled_strips_machinery(self):
        suite = _churny_suite(objects=300)
        workload = _workload(suite, 4)
        config = OdysseyConfig(snapshot_reads=False)
        engine = SpaceOdyssey(suite.fork().catalog, config)
        assert engine.epochs is None
        result = engine.query_batch(workload)  # classic path still works
        assert len(result.results) == len(workload)
        with pytest.raises(RuntimeError):
            engine.query_batch(workload, snapshot=True)
        with pytest.raises(RuntimeError):
            engine.prepare_batch(workload)
