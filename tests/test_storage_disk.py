"""Unit tests for the simulated disk facade (cost accounting, caching)."""

from __future__ import annotations

import pytest

from repro.storage.backend import InMemoryBackend
from repro.storage.cost_model import DiskModel
from repro.storage.disk import Disk


@pytest.fixture
def model() -> DiskModel:
    # seek = 1 ms, one page transfers in exactly 1 ms -> easy arithmetic.
    return DiskModel(page_size=4096, seek_time_s=1e-3, transfer_rate_bytes_per_s=4096 * 1000)


@pytest.fixture
def disk(model: DiskModel) -> Disk:
    return Disk(model=model, buffer_pages=0)


class TestFileOperations:
    def test_create_exists_delete(self, disk):
        disk.create_file("f")
        assert disk.file_exists("f")
        assert disk.num_pages("f") == 0
        disk.delete_file("f")
        assert not disk.file_exists("f")

    def test_file_size_bytes(self, disk):
        disk.create_file("f")
        disk.append_page("f", b"x")
        assert disk.file_size_bytes("f") == disk.page_size

    def test_mismatched_backend_page_size_rejected(self, model):
        backend = InMemoryBackend(page_size=1024)
        with pytest.raises(ValueError):
            Disk(backend=backend, model=model)


class TestCostAccounting:
    def test_first_access_is_random(self, disk):
        disk.create_file("f")
        disk.append_page("f", b"a")  # write: random (head unknown)
        assert disk.stats.pages_written == 1
        assert disk.stats.seeks == 1

    def test_sequential_appends_charged_without_seek(self, disk):
        disk.create_file("f")
        disk.append_page("f", b"a")
        seeks_before = disk.stats.seeks
        disk.append_page("f", b"b")  # continues after the previous page
        assert disk.stats.seeks == seeks_before

    def test_read_run_single_positioning(self, disk, model):
        disk.create_file("f")
        for i in range(10):
            disk.append_page("f", bytes([i]))
        disk.reset_head()
        before = disk.stats_snapshot()
        pages = disk.read_run("f", 0, 10)
        delta = disk.stats.delta_since(before)
        assert len(pages) == 10
        assert delta.seeks == 1
        assert delta.io_seconds == pytest.approx(
            model.seek_time_s + 10 * model.page_transfer_time_s
        )

    def test_random_reads_each_pay_seek(self, disk):
        disk.create_file("f")
        for i in range(10):
            disk.append_page("f", bytes([i]))
        disk.reset_head()
        before = disk.stats_snapshot()
        disk.read_page("f", 7)
        disk.read_page("f", 2)
        delta = disk.stats.delta_since(before)
        assert delta.seeks == 2

    def test_consecutive_single_page_reads_become_sequential(self, disk):
        disk.create_file("f")
        for i in range(3):
            disk.append_page("f", bytes([i]))
        disk.reset_head()
        before = disk.stats_snapshot()
        disk.read_page("f", 0)
        disk.read_page("f", 1)
        disk.read_page("f", 2)
        delta = disk.stats.delta_since(before)
        assert delta.seeks == 1  # only the first read repositions the head

    def test_switching_files_costs_a_seek(self, disk):
        disk.create_file("f")
        disk.create_file("g")
        disk.append_page("f", b"a")
        disk.append_page("g", b"b")
        disk.reset_head()
        before = disk.stats_snapshot()
        disk.read_page("f", 0)
        disk.read_page("g", 0)
        assert disk.stats.delta_since(before).seeks == 2

    def test_scan_pages_is_sequential(self, disk, model):
        disk.create_file("f")
        for i in range(20):
            disk.append_page("f", bytes([i]))
        disk.reset_head()
        before = disk.stats_snapshot()
        pages = list(disk.scan_pages("f"))
        delta = disk.stats.delta_since(before)
        assert len(pages) == 20
        assert delta.seeks == 1
        assert delta.io_seconds == pytest.approx(
            model.seek_time_s + 20 * model.page_transfer_time_s
        )

    def test_cpu_charging(self, disk, model):
        disk.charge_cpu_records(1000)
        assert disk.stats.cpu_seconds == pytest.approx(model.cpu_time_s(1000))
        disk.charge_cpu_seconds(0.5)
        assert disk.stats.cpu_seconds == pytest.approx(model.cpu_time_s(1000) + 0.5)

    def test_simulated_time_is_monotonic(self, disk):
        disk.create_file("f")
        previous = 0.0
        for i in range(5):
            disk.append_page("f", bytes([i]))
            assert disk.stats.simulated_seconds >= previous
            previous = disk.stats.simulated_seconds


class TestBufferPool:
    def test_cached_read_is_free(self, model):
        disk = Disk(model=model, buffer_pages=8)
        disk.create_file("f")
        disk.append_page("f", b"a")
        disk.clear_cache()
        disk.read_page("f", 0)
        before = disk.stats_snapshot()
        disk.read_page("f", 0)  # now cached
        delta = disk.stats.delta_since(before)
        assert delta.pages_read == 0
        assert delta.io_seconds == 0.0
        assert delta.cache_hits == 1

    def test_clear_cache_forces_io_again(self, model):
        disk = Disk(model=model, buffer_pages=8)
        disk.create_file("f")
        disk.append_page("f", b"a")
        disk.read_page("f", 0)
        disk.clear_cache()
        before = disk.stats_snapshot()
        disk.read_page("f", 0)
        assert disk.stats.delta_since(before).pages_read == 1

    def test_delete_file_invalidates_cache(self, model):
        disk = Disk(model=model, buffer_pages=8)
        disk.create_file("f")
        disk.append_page("f", b"a")
        disk.read_page("f", 0)
        disk.delete_file("f")
        disk.create_file("f")
        disk.append_page("f", b"b")
        assert disk.read_page("f", 0).startswith(b"b")

    def test_write_through_updates_cache(self, model):
        disk = Disk(model=model, buffer_pages=8)
        disk.create_file("f")
        disk.append_page("f", b"a")
        disk.write_page("f", 0, b"z")
        before = disk.stats_snapshot()
        assert disk.read_page("f", 0).startswith(b"z")
        assert disk.stats.delta_since(before).pages_read == 0  # served from cache
