"""Graceful degradation and shutdown semantics of the serving frontend.

A ``FlakyEngine`` delegating wrapper injects failures at exact engine
entry points (``query``, ``query_batch``, ``prepare_batch``), so every
scenario is deterministic: transient errors must be retried with backoff,
repeated failures must open the circuit breaker (typed ``ServiceDegraded``
shed, never a hang), a cooled-down breaker must close again on a
successful probe, and ``close()``/``submit()`` must behave deterministically
for both the classic and the pipelined dispatcher.
"""

from __future__ import annotations

import time

import pytest

from repro.core.config import OdysseyConfig
from repro.core.odyssey import SpaceOdyssey
from repro.geometry.box import Box
from repro.serve.service import (
    QueryService,
    ServiceClosed,
    ServiceDegraded,
)
from repro.storage.errors import TransientIOError


class FlakyEngine:
    """Delegates to a real engine, injecting scripted failures.

    ``transient_query_failures`` — the next N ``query`` calls raise
    :class:`TransientIOError` (then delegate).
    ``transient_prepare_failures`` — same for ``prepare_batch``.
    ``batch_error`` — while set, every ``query_batch`` call raises it.
    ``armed_error`` — while set, ``query``/``query_batch``/``prepare_batch``
    all raise it (a persistently broken engine).
    """

    def __init__(self, engine: SpaceOdyssey) -> None:
        self._engine = engine
        self.transient_query_failures = 0
        self.transient_prepare_failures = 0
        self.batch_error: BaseException | None = None
        self.armed_error: BaseException | None = None
        self.engine_calls = 0

    def __getattr__(self, name):
        return getattr(self._engine, name)

    def query(self, box, dataset_ids):
        if self.armed_error is not None:
            raise self.armed_error
        if self.transient_query_failures > 0:
            self.transient_query_failures -= 1
            raise TransientIOError("injected transient query fault")
        self.engine_calls += 1
        return self._engine.query(box, dataset_ids)

    def query_batch(self, queries, workers=None):
        if self.armed_error is not None:
            raise self.armed_error
        if self.batch_error is not None:
            raise self.batch_error
        self.engine_calls += 1
        return self._engine.query_batch(queries, workers=workers)

    def prepare_batch(self, queries, workers=None):
        if self.armed_error is not None:
            raise self.armed_error
        if self.transient_prepare_failures > 0:
            self.transient_prepare_failures -= 1
            raise TransientIOError("injected transient prepare fault")
        self.engine_calls += 1
        return self._engine.prepare_batch(queries, workers=workers)

    def commit_batch(self, prepared):
        return self._engine.commit_batch(prepared)


BOX = Box((100.0, 100.0, 100.0), (1000.0, 1000.0, 1000.0))


def hit_keys(hits) -> list[tuple[int, int]]:
    """Order-insensitive identity of a query answer."""
    return sorted((obj.dataset_id, obj.oid) for obj in hits)


@pytest.fixture
def engine(suite) -> SpaceOdyssey:
    return SpaceOdyssey(suite.catalog, OdysseyConfig())


def service(target, **kwargs) -> QueryService:
    kwargs.setdefault("max_delay_ms", 0.0)
    kwargs.setdefault("sleep", lambda _s: None)
    return QueryService(target, **kwargs)


# ---------------------------------------------------------------------- #
# Shutdown semantics (both dispatchers)
# ---------------------------------------------------------------------- #


class TestCloseSemantics:
    @pytest.mark.parametrize("pipeline", [False, True])
    def test_close_is_idempotent(self, engine, pipeline):
        svc = service(engine, pipeline=pipeline)
        svc.query(BOX, (0,))
        svc.close()
        svc.close()  # second close is a no-op, not an error
        svc.close(drain=False)  # ...in either mode
        assert svc.closed

    @pytest.mark.parametrize("pipeline", [False, True])
    def test_submit_after_close_raises_deterministically(self, engine, pipeline):
        svc = service(engine, pipeline=pipeline)
        svc.close()
        for _ in range(3):
            with pytest.raises(ServiceClosed):
                svc.submit(BOX, (0,))
        stats = svc.stats
        assert stats.submitted == stats.completed + stats.failed + stats.cancelled

    def test_engine_usable_after_close(self, engine):
        svc = service(engine, pipeline=False)
        expected = hit_keys(svc.query(BOX, (0, 1)))
        svc.close()
        assert hit_keys(engine.query(BOX, (0, 1))) == expected
        assert hit_keys(engine.query(BOX, (0, 1))) == expected


# ---------------------------------------------------------------------- #
# Transient retry with backoff
# ---------------------------------------------------------------------- #


class TestTransientRetry:
    def test_sequential_fallback_retries_transient_queries(self, engine, suite):
        reference = SpaceOdyssey(suite.fork().catalog, OdysseyConfig())
        flaky = FlakyEngine(engine)
        flaky.batch_error = TransientIOError("batch path down")
        flaky.transient_query_failures = 2
        sleeps: list[float] = []
        svc = service(
            flaky, pipeline=False, batch_retries=2, retry_backoff_ms=1.0,
            sleep=sleeps.append,
        )
        with svc:
            hits = svc.query(BOX, (0, 1))
        assert hit_keys(hits) == hit_keys(reference.query(BOX, (0, 1)))
        stats = svc.stats
        assert stats.failed == 0
        assert stats.fallbacks == 1  # the broken batch path forced the fallback
        assert stats.retries == 2  # both transient faults absorbed
        assert sleeps == [0.001, 0.002]  # exponential backoff between retries
        assert svc.healthy

    def test_pipelined_prepare_retries_transient_faults(self, engine):
        flaky = FlakyEngine(engine)
        flaky.transient_prepare_failures = 2
        svc = service(flaky, pipeline=True, batch_retries=2)
        with svc:
            hits = svc.query(BOX, (0,))
        assert hit_keys(hits) == hit_keys(engine.query(BOX, (0,)))
        stats = svc.stats
        assert stats.retries == 2
        assert stats.failed == 0
        assert stats.fallbacks == 0  # prepare recovered; no sequential replay

    def test_retry_budget_exhaustion_surfaces_the_error(self, engine):
        flaky = FlakyEngine(engine)
        flaky.batch_error = TransientIOError("batch path down")
        flaky.transient_query_failures = 10
        svc = service(flaky, pipeline=False, batch_retries=2)
        with svc:
            submission = svc.submit(BOX, (0,))
            error = submission.exception(timeout=10)
        assert isinstance(error, TransientIOError)
        assert svc.stats.failed == 1
        assert svc.stats.retries == 2  # budget spent before surfacing

    def test_backoff_cap_is_configurable(self, engine, suite):
        reference = SpaceOdyssey(suite.fork().catalog, OdysseyConfig())
        flaky = FlakyEngine(engine)
        flaky.batch_error = TransientIOError("batch path down")
        flaky.transient_query_failures = 3
        sleeps: list[float] = []
        svc = service(
            flaky, pipeline=False, batch_retries=3, retry_backoff_ms=100.0,
            retry_backoff_max_ms=150.0, sleep=sleeps.append,
        )
        with svc:
            hits = svc.query(BOX, (0, 1))
        assert hit_keys(hits) == hit_keys(reference.query(BOX, (0, 1)))
        # 100 ms doubles to 200 ms but the configured ceiling clips it.
        assert sleeps == [0.1, 0.15, 0.15]

    def test_abort_during_backoff_returns_promptly(self, engine):
        """close(drain=False) must interrupt a backoff wait, not ride it out.

        The dispatcher backs off on an Event wait, so with a 60 s backoff
        an abort still shuts the service down in milliseconds and the
        in-flight submission surfaces the original transient error.
        """
        flaky = FlakyEngine(engine)
        flaky.batch_error = TransientIOError("batch path down")
        flaky.transient_query_failures = 100
        svc = QueryService(
            flaky, pipeline=False, max_delay_ms=0.0, batch_retries=10,
            retry_backoff_ms=60_000.0, retry_backoff_max_ms=60_000.0,
        )
        submission = svc.submit(BOX, (0,))
        deadline = time.monotonic() + 10.0
        while svc.stats.retries == 0:  # dispatcher is now inside the backoff
            assert time.monotonic() < deadline, "dispatcher never started retrying"
            time.sleep(0.005)
        started = time.monotonic()
        svc.close(drain=False, timeout=10.0)
        elapsed = time.monotonic() - started
        assert elapsed < 5.0, f"abort waited out the backoff ({elapsed:.1f}s)"
        assert isinstance(submission.exception(timeout=1.0), TransientIOError)

    def test_non_transient_errors_are_not_retried(self, engine):
        flaky = FlakyEngine(engine)
        flaky.armed_error = ValueError("bad dataset id")
        svc = service(flaky, pipeline=False, batch_retries=5)
        with svc:
            error = svc.submit(BOX, (0,)).exception(timeout=10)
        assert isinstance(error, ValueError)
        assert svc.stats.retries == 0


# ---------------------------------------------------------------------- #
# Circuit breaker
# ---------------------------------------------------------------------- #


class TestCircuitBreaker:
    @pytest.mark.parametrize("pipeline", [False, True])
    def test_breaker_opens_and_sheds_with_typed_error(self, engine, pipeline):
        flaky = FlakyEngine(engine)
        flaky.armed_error = ValueError("engine on fire")
        svc = service(
            flaky,
            pipeline=pipeline,
            batch_retries=0,
            breaker_threshold=2,
            breaker_cooldown_ms=60_000.0,  # stays open for the whole test
        )
        with svc:
            first = svc.submit(BOX, (0,)).exception(timeout=10)
            second = svc.submit(BOX, (0,)).exception(timeout=10)
            assert isinstance(first, ValueError)
            assert isinstance(second, ValueError)
            calls_when_opened = flaky.engine_calls
            # The breaker is now open: queries resolve immediately with a
            # typed error (never a hang) and the engine is not touched.
            shed = [svc.submit(BOX, (0,)).exception(timeout=10) for _ in range(3)]
            assert all(isinstance(error, ServiceDegraded) for error in shed)
            assert flaky.engine_calls == calls_when_opened
            assert not svc.healthy
        stats = svc.stats
        assert stats.breaker_opens == 1
        assert stats.degraded == 3
        assert stats.failed == 2 + 3  # engine failures plus shed queries
        assert stats.submitted == stats.completed + stats.failed + stats.cancelled

    def test_breaker_closes_after_successful_probe(self, engine):
        flaky = FlakyEngine(engine)
        flaky.armed_error = ValueError("engine on fire")
        svc = service(
            flaky,
            pipeline=False,
            batch_retries=0,
            breaker_threshold=2,
            breaker_cooldown_ms=0.0,  # half-open immediately
        )
        with svc:
            svc.submit(BOX, (0,)).exception(timeout=10)
            svc.submit(BOX, (0,)).exception(timeout=10)
            assert svc.stats.breaker_opens == 1
            flaky.armed_error = None  # the storage recovered
            hits = svc.query(BOX, (0,))  # the half-open probe goes through
            assert hit_keys(hits) == hit_keys(engine.query(BOX, (0,)))
            assert svc.healthy
            assert hit_keys(svc.query(BOX, (0,))) == hit_keys(hits)

    def test_breaker_disabled_never_sheds(self, engine):
        flaky = FlakyEngine(engine)
        flaky.armed_error = ValueError("engine on fire")
        svc = service(flaky, pipeline=False, batch_retries=0, breaker_threshold=None)
        with svc:
            errors = [svc.submit(BOX, (0,)).exception(timeout=10) for _ in range(6)]
        assert all(isinstance(error, ValueError) for error in errors)
        assert svc.stats.degraded == 0
        assert svc.stats.breaker_opens == 0


class TestParameterValidation:
    def test_rejects_bad_degradation_parameters(self, engine):
        with pytest.raises(ValueError):
            QueryService(engine, batch_retries=-1)
        with pytest.raises(ValueError):
            QueryService(engine, retry_backoff_ms=-1.0)
        with pytest.raises(ValueError):
            QueryService(engine, retry_backoff_max_ms=-1.0)
        with pytest.raises(ValueError):
            QueryService(engine, breaker_threshold=0)
        with pytest.raises(ValueError):
            QueryService(engine, breaker_cooldown_ms=-1.0)
