"""Property-based tests (Hypothesis) for core data structures and invariants.

These cover the invariants DESIGN.md commits to:

* geometric identities of :class:`Box`;
* binary codec round-trips;
* PagedFile group writes never lose or duplicate records, with or without
  in-place page reuse;
* every index (Grid, R-tree, FLAT, Space Odyssey) answers exactly like the
  brute-force oracle on randomly generated data and query sequences;
* the partition tree never loses objects across arbitrary refinement;
* the vectorized box-intersection kernels agree with the scalar
  :meth:`Box.intersects` on random boxes, including degenerate
  zero-extent ones;
* batched execution answers exactly like the brute-force oracle for
  random batches mixing combinations, duplicate queries and empty
  (zero-extent) windows;
* the epoch (MVCC) layer's pin/unpin/publish discipline: a pinned epoch
  is never freed, epoch ids grow strictly monotonically, and a freshly
  published epoch's tree captures equal the live trees at capture time.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.flat import FLATIndex
from repro.baselines.grid import GridIndex
from repro.baselines.interface import result_keys
from repro.baselines.rtree import STRRTree
from repro.core.adaptor import Adaptor
from repro.core.config import OdysseyConfig
from repro.core.odyssey import SpaceOdyssey
from repro.data.dataset import Dataset, DatasetCatalog
from repro.data.spatial_object import SpatialObject, spatial_object_codec
from repro.geometry.box import Box
from repro.geometry.vectorized import boxes_to_arrays, intersect_mask, intersect_matrix
from repro.storage.codec import FixedRecordCodec
from repro.storage.cost_model import DiskModel
from repro.storage.disk import Disk
from repro.storage.pagedfile import PagedFile

UNIVERSE = Box((0.0, 0.0, 0.0), (100.0, 100.0, 100.0))

coordinates = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
extents = st.floats(min_value=0.01, max_value=10.0, allow_nan=False)
#: Side lengths that may collapse to zero (degenerate boxes).
degenerate_extents = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)


@st.composite
def boxes(draw, dimension: int = 3) -> Box:
    center = [draw(coordinates) for _ in range(dimension)]
    sides = [draw(extents) for _ in range(dimension)]
    return Box.from_center(center, sides).clamp(UNIVERSE)


@st.composite
def maybe_degenerate_boxes(draw, dimension: int = 3) -> Box:
    """Boxes whose sides may be exactly zero (points, slabs, lines)."""
    center = [draw(coordinates) for _ in range(dimension)]
    sides = [draw(degenerate_extents) for _ in range(dimension)]
    return Box.from_center(center, sides).clamp(UNIVERSE)


@st.composite
def spatial_objects(draw, dataset_id: int = 0) -> SpatialObject:
    oid = draw(st.integers(min_value=0, max_value=2**40))
    return SpatialObject(oid=oid, dataset_id=dataset_id, box=draw(boxes()))


def object_lists(min_size=0, max_size=120):
    return st.lists(spatial_objects(), min_size=min_size, max_size=max_size)


class TestBoxProperties:
    @given(boxes(), boxes())
    def test_intersection_symmetry(self, a: Box, b: Box):
        assert a.intersects(b) == b.intersects(a)

    @given(boxes(), boxes())
    def test_intersection_volume_never_exceeds_operands(self, a: Box, b: Box):
        overlap = a.intersection(b)
        if overlap is None:
            assert not a.intersects(b)
        else:
            assert overlap.volume() <= min(a.volume(), b.volume()) + 1e-9
            assert a.intersects(b)

    @given(boxes(), boxes())
    def test_union_contains_both(self, a: Box, b: Box):
        union = a.union(b)
        assert union.contains_box(a)
        assert union.contains_box(b)

    @given(boxes(), st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
    def test_expand_then_clamp_contains_original_clamped(self, box: Box, amount: float):
        expanded = box.expand(amount).clamp(UNIVERSE)
        assert expanded.contains_box(box.clamp(UNIVERSE))

    @given(boxes(), st.integers(min_value=1, max_value=4))
    def test_split_grid_partitions_volume(self, box: Box, cells: int):
        children = box.split_grid(cells)
        assert len(children) == cells**3
        assert sum(child.volume() for child in children) == pytest.approx(
            box.volume(), rel=1e-6, abs=1e-9
        )

    @given(boxes(), boxes(), st.integers(min_value=1, max_value=5))
    def test_grid_cells_overlapping_is_superset_of_exact(
        self, box: Box, query: Box, cells: int
    ):
        exact = {
            index
            for index, child in enumerate(box.split_grid(cells))
            if child.intersects(query)
        }
        listed = set(box.grid_cells_overlapping(query, cells))
        assert exact <= listed


class TestCodecProperties:
    @given(spatial_objects())
    def test_spatial_object_roundtrip(self, obj: SpatialObject):
        codec = spatial_object_codec(3)
        assert codec.unpack(codec.pack(obj)) == obj

    @given(st.lists(st.integers(min_value=-(2**62), max_value=2**62), max_size=300))
    def test_paged_file_roundtrip(self, records: list[int]):
        codec = FixedRecordCodec("<q", lambda v: (v,), lambda f: f[0])
        disk = Disk(model=DiskModel(), buffer_pages=0)
        file: PagedFile[int] = PagedFile(disk, "prop.dat", codec)
        run = file.append_group(records)
        assert sorted(file.read_group(run)) == sorted(records)


def degenerate_spatial_objects():
    """Objects whose boxes may collapse to points, lines or slabs."""

    @st.composite
    def _build(draw) -> SpatialObject:
        oid = draw(st.integers(min_value=0, max_value=2**40))
        did = draw(st.integers(min_value=0, max_value=7))
        return SpatialObject(
            oid=oid, dataset_id=did, box=draw(maybe_degenerate_boxes())
        )

    return _build()


class TestArrayCodecProperties:
    """The array surface must be byte- and value-identical to the scalar codec.

    Covers empty groups, partial pages (group sizes around the 63-records
    page capacity) and degenerate zero-extent boxes.
    """

    @given(st.lists(degenerate_spatial_objects(), max_size=160))
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_array_read_matches_scalar_read(self, objects):
        disk = Disk(model=DiskModel(), buffer_pages=0)
        file = PagedFile(disk, "prop_arr.dat", spatial_object_codec(3))
        run = file.append_group(objects)
        records = file.read_group_array(run)
        codec = file.codec
        assert len(records) == len(objects)
        assert records.tobytes() == b"".join(codec.pack(obj) for obj in objects)
        assert file.read_group(run) == objects

    @given(
        st.lists(
            st.lists(degenerate_spatial_objects(), max_size=80),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_array_writes_are_byte_identical_to_scalar_writes(self, groups):
        codec = spatial_object_codec(3)
        scalar_disk = Disk(model=DiskModel(), buffer_pages=0)
        array_disk = Disk(model=DiskModel(), buffer_pages=0)
        scalar_file = PagedFile(scalar_disk, "prop_w.dat", codec)
        array_file = PagedFile(array_disk, "prop_w.dat", codec)
        parent = scalar_file.append_group(list(range_objects(120)))
        array_parent = array_file.append_group(list(range_objects(120)))
        assert parent == array_parent
        scalar_runs = scalar_file.write_groups(groups, reuse=parent.extents)
        staging = PagedFile(
            Disk(model=DiskModel(), buffer_pages=0), "staging.dat", codec
        )
        array_groups = [
            staging.read_group_array(staging.append_group(group)) for group in groups
        ]
        array_runs = array_file.write_groups_array(array_groups, reuse=parent.extents)
        assert scalar_runs == array_runs
        assert [
            scalar_disk.backend.read("prop_w.dat", page)
            for page in range(scalar_disk.num_pages("prop_w.dat"))
        ] == [
            array_disk.backend.read("prop_w.dat", page)
            for page in range(array_disk.num_pages("prop_w.dat"))
        ]

    @given(st.lists(degenerate_spatial_objects(), max_size=100))
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_scan_arrays_sees_every_record(self, objects):
        disk = Disk(model=DiskModel(), buffer_pages=0)
        file = PagedFile(disk, "prop_scan.dat", spatial_object_codec(3))
        file.append_group(objects[: len(objects) // 2])
        file.append_group(objects[len(objects) // 2 :])
        total = sum(len(chunk) for chunk in file.scan_arrays(chunk_pages=1))
        assert total == len(objects)


def range_objects(count: int):
    """Deterministic small objects for write-path comparisons."""
    for oid in range(count):
        center = (float(oid % 10) * 10.0 + 1.0,) * 3
        yield SpatialObject(oid=oid, dataset_id=0, box=Box.cube(center, 1.0))


class TestWriteGroupsProperties:
    @given(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=10**9), max_size=80),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    def test_groups_roundtrip_with_reuse(self, groups: list[list[int]]):
        codec = FixedRecordCodec("<q", lambda v: (v,), lambda f: f[0])
        disk = Disk(model=DiskModel(), buffer_pages=0)
        file: PagedFile[int] = PagedFile(disk, "prop2.dat", codec)
        parent = file.append_group(list(range(500)))
        runs = file.write_groups(groups, reuse=parent.extents)
        assert len(runs) == len(groups)
        for group, run in zip(groups, runs):
            assert sorted(file.read_group(run)) == sorted(group)
        # No two groups share a page.
        seen: set[int] = set()
        for run in runs:
            pages = set(run.page_numbers())
            assert pages.isdisjoint(seen)
            seen |= pages


def _brute_force(objects: list[SpatialObject], query: Box) -> set[tuple[int, int]]:
    return {o.key() for o in objects if o.intersects(query)}


class TestIndexCorrectnessProperties:
    @given(object_lists(min_size=1), st.lists(boxes(), min_size=1, max_size=5))
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_grid_matches_bruteforce(self, objects, queries):
        objects = _dedupe(objects)
        disk = Disk(model=DiskModel(), buffer_pages=0)
        dataset = Dataset.create(disk, 0, "prop_grid", objects, UNIVERSE)
        index = GridIndex(disk, "prop_grid_idx", UNIVERSE, cells_per_dim=3)
        index.build([dataset])
        for query in queries:
            assert result_keys(index.query(query)) == _brute_force(objects, query)

    @given(object_lists(min_size=1), st.lists(boxes(), min_size=1, max_size=5))
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_rtree_matches_bruteforce(self, objects, queries):
        objects = _dedupe(objects)
        disk = Disk(model=DiskModel(), buffer_pages=0)
        dataset = Dataset.create(disk, 0, "prop_rtree", objects, UNIVERSE)
        index = STRRTree(disk, "prop_rtree_idx", UNIVERSE)
        index.build([dataset])
        for query in queries:
            assert result_keys(index.query(query)) == _brute_force(objects, query)

    @given(object_lists(min_size=1), st.lists(boxes(), min_size=1, max_size=5))
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_flat_matches_bruteforce(self, objects, queries):
        objects = _dedupe(objects)
        disk = Disk(model=DiskModel(), buffer_pages=0)
        dataset = Dataset.create(disk, 0, "prop_flat", objects, UNIVERSE)
        index = FLATIndex(disk, "prop_flat_idx", UNIVERSE)
        index.build([dataset])
        for query in queries:
            assert result_keys(index.query(query)) == _brute_force(objects, query)

    @given(
        st.lists(object_lists(min_size=1, max_size=60), min_size=2, max_size=3),
        st.lists(boxes(), min_size=2, max_size=6),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_odyssey_matches_bruteforce_over_query_sequence(
        self, per_dataset_objects, queries, rng
    ):
        disk = Disk(model=DiskModel(), buffer_pages=0)
        datasets = []
        all_objects: dict[int, list[SpatialObject]] = {}
        for dataset_id, objects in enumerate(per_dataset_objects):
            objects = [
                SpatialObject(oid=o.oid, dataset_id=dataset_id, box=o.box)
                for o in _dedupe(objects)
            ]
            all_objects[dataset_id] = objects
            datasets.append(
                Dataset.create(disk, dataset_id, f"prop_ody_{dataset_id}", objects, UNIVERSE)
            )
        catalog = DatasetCatalog(datasets)
        odyssey = SpaceOdyssey(
            catalog,
            OdysseyConfig(
                partitions_per_level=8,
                merge_threshold=1,
                min_merge_combination=2,
                merge_partition_min_hits=1,
                merge_only_converged=False,
            ),
        )
        ids = list(all_objects)
        for query in queries:
            requested = rng.sample(ids, k=rng.randint(1, len(ids)))
            expected = set()
            for dataset_id in requested:
                expected |= _brute_force(all_objects[dataset_id], query)
            assert result_keys(odyssey.query(query, requested)) == expected


class TestPartitionTreeProperties:
    @given(object_lists(min_size=1, max_size=150), st.lists(boxes(), min_size=1, max_size=6))
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_refinement_never_loses_objects(self, objects, queries):
        objects = _dedupe(objects)
        disk = Disk(model=DiskModel(), buffer_pages=0)
        dataset = Dataset.create(disk, 0, "prop_tree", objects, UNIVERSE)
        config = OdysseyConfig(partitions_per_level=8)
        adaptor = Adaptor(config)
        tree = adaptor.create_tree(dataset)
        adaptor.initialize(tree)
        for query in queries:
            for leaf in tree.leaves_overlapping(query):
                adaptor.maybe_refine(tree, leaf, query)
        assert tree.total_stored_objects() == len(objects)
        # Every object is stored in the leaf whose region contains its centre.
        for leaf in tree.leaves():
            for obj in tree.read_partition(leaf):
                assert leaf.box.contains_point(obj.center)


class TestVectorizedKernelProperties:
    """The NumPy kernels must agree with scalar Box.intersects exactly."""

    @given(maybe_degenerate_boxes(), st.lists(maybe_degenerate_boxes(), max_size=30))
    def test_intersect_mask_matches_scalar(self, query: Box, others: list[Box]):
        los, his = boxes_to_arrays(others, dimension=3)
        mask = intersect_mask(
            np.asarray(query.lo), np.asarray(query.hi), los, his
        )
        assert mask.shape == (len(others),)
        assert mask.tolist() == [query.intersects(other) for other in others]

    @given(
        st.lists(maybe_degenerate_boxes(), max_size=8),
        st.lists(maybe_degenerate_boxes(), max_size=8),
    )
    def test_intersect_matrix_matches_scalar(self, left: list[Box], right: list[Box]):
        a_lo, a_hi = boxes_to_arrays(left, dimension=3)
        b_lo, b_hi = boxes_to_arrays(right, dimension=3)
        matrix = intersect_matrix(a_lo, a_hi, b_lo, b_hi)
        assert matrix.shape == (len(left), len(right))
        for i, a in enumerate(left):
            for j, b in enumerate(right):
                assert matrix[i, j] == a.intersects(b)

    @given(st.lists(maybe_degenerate_boxes(), min_size=1, max_size=12))
    def test_matrix_and_mask_are_consistent(self, family: list[Box]):
        lo, hi = boxes_to_arrays(family, dimension=3)
        matrix = intersect_matrix(lo, hi, lo, hi)
        assert (matrix == matrix.T).all(), "intersection must be symmetric"
        assert matrix.diagonal().all(), "every box intersects itself"
        for i, box in enumerate(family):
            row = intersect_mask(np.asarray(box.lo), np.asarray(box.hi), lo, hi)
            assert (row == matrix[i]).all()


class TestBatchProperties:
    """query_batch must answer exactly like the brute-force oracle."""

    @given(
        st.lists(object_lists(min_size=1, max_size=60), min_size=2, max_size=3),
        st.lists(st.one_of(boxes(), maybe_degenerate_boxes()), min_size=2, max_size=6),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_batch_matches_bruteforce(self, per_dataset_objects, windows, rng):
        disk = Disk(model=DiskModel(), buffer_pages=0)
        all_objects: dict[int, list[SpatialObject]] = {}
        datasets = []
        for dataset_id, objects in enumerate(per_dataset_objects):
            objects = [
                SpatialObject(oid=o.oid, dataset_id=dataset_id, box=o.box)
                for o in _dedupe(objects)
            ]
            all_objects[dataset_id] = objects
            datasets.append(
                Dataset.create(disk, dataset_id, f"prop_batch_{dataset_id}", objects, UNIVERSE)
            )
        odyssey = SpaceOdyssey(
            DatasetCatalog(datasets),
            OdysseyConfig(
                partitions_per_level=8,
                merge_threshold=1,
                min_merge_combination=2,
                merge_partition_min_hits=1,
                merge_only_converged=False,
            ),
        )
        ids = list(all_objects)
        queries: list[tuple[Box, list[int]]] = []
        for window in windows:
            # Mixed combinations; ~1 in 3 queries duplicates its predecessor
            # so the shared read set and replay both see repeats.
            if queries and rng.random() < 0.34:
                queries.append(queries[-1])
            else:
                requested = rng.sample(ids, k=rng.randint(1, len(ids)))
                queries.append((window, requested))
        result = odyssey.query_batch(queries)
        assert len(result) == len(queries)
        for (window, requested), hits, report in zip(
            queries, result.results, result.reports
        ):
            expected = set()
            for dataset_id in requested:
                expected |= _brute_force(all_objects[dataset_id], window)
            assert result_keys(hits) == expected
            assert report.results == len(hits)

    @given(
        object_lists(min_size=1, max_size=80),
        st.lists(st.one_of(boxes(), maybe_degenerate_boxes()), min_size=1, max_size=5),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_chunked_batches_match_one_engine_run_sequentially(
        self, objects, windows, batch_size
    ):
        """Splitting a stream into batches must not change any answer."""
        objects = _dedupe(objects)

        def fresh_engine() -> SpaceOdyssey:
            disk = Disk(model=DiskModel(), buffer_pages=0)
            dataset = Dataset.create(disk, 0, "prop_chunk", objects, UNIVERSE)
            return SpaceOdyssey(
                DatasetCatalog([dataset]), OdysseyConfig(partitions_per_level=8)
            )

        queries = [(window, [0]) for window in windows]
        sequential = fresh_engine()
        expected = [
            result_keys(sequential.query(window, ids)) for window, ids in queries
        ]
        batched = fresh_engine()
        actual: list[set] = []
        for start in range(0, len(queries), batch_size):
            chunk = queries[start : start + batch_size]
            actual.extend(
                result_keys(hits) for hits in batched.query_batch(chunk).results
            )
        assert actual == expected
        assert batched.summary() == sequential.summary()


class TestEpochProperties:
    """Invariants of the epoch-snapshot (MVCC) layer under random op mixes."""

    @given(
        object_lists(min_size=1, max_size=60),
        st.lists(st.sampled_from(("query", "pin", "unpin")), min_size=1, max_size=30),
        st.lists(boxes(), min_size=1, max_size=8),
    )
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_pin_unpin_publish_invariants(self, objects, ops, windows):
        objects = _dedupe(objects)
        disk = Disk(model=DiskModel(), buffer_pages=0)
        dataset = Dataset.create(disk, 0, "prop_epoch", objects, UNIVERSE)
        engine = SpaceOdyssey(
            DatasetCatalog([dataset]),
            OdysseyConfig(partitions_per_level=8, refinement_threshold=2.0),
        )
        manager = engine.epochs
        pins = []
        last_id = manager.current.epoch_id
        window_index = 0
        for op in ops:
            if op == "query":
                window = windows[window_index % len(windows)]
                window_index += 1
                engine.query(window, [0])
                current = manager.current
                # Epoch ids grow strictly monotonically across publishes.
                assert current.epoch_id > last_id
                last_id = current.epoch_id
                # The fresh capture equals the live tree at capture time.
                tree = engine.trees[0]
                capture = current.trees[0]
                assert capture.version == tree.version
                assert capture.runs == tuple(
                    leaf.run for leaf in tree.leaf_snapshot().leaves
                )
            elif op == "pin":
                pins.append(manager.pin())
            elif pins:
                manager.unpin(pins.pop())
            # A pinned epoch is never freed: every pin stays reachable on
            # the chain, whatever got published or released around it.
            alive = set()
            epoch = manager._head
            while epoch is not None:
                alive.add(id(epoch))
                epoch = epoch.next
            for pin in pins:
                assert id(pin) in alive, "a pinned epoch was pruned"
            assert manager.pinned_total() == len(pins)
        while pins:
            manager.unpin(pins.pop())
        assert manager.chain_length() == 1
        assert manager.pinned_total() == 0
        assert manager.retained_total() == 0


def _dedupe(objects: list[SpatialObject]) -> list[SpatialObject]:
    """Ensure unique oids (generated oids may collide)."""
    return [
        SpatialObject(oid=index, dataset_id=obj.dataset_id, box=obj.box)
        for index, obj in enumerate(objects)
    ]
