"""Unit tests of the batched execution engine's building blocks.

The end-to-end guarantees (batch == sequential, batch == brute force,
batch never costs more pages) live in ``test_batch_differential.py``,
``test_properties.py`` and ``test_batch_cost.py``; this module covers the
pieces in isolation: batch normalisation, the leaf snapshot cache, the
vectorized overlap search, the columnar page decode and the shared read
set's deduplication.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adaptor import Adaptor
from repro.core.batch import BatchReadSet, QueryBatch
from repro.core.config import OdysseyConfig
from repro.core.odyssey import SpaceOdyssey
from repro.data.dataset import DatasetCatalog
from repro.data.spatial_object import spatial_object_codec, spatial_object_dtype
from repro.geometry.box import Box
from repro.workload.query import RangeQuery

from tests.conftest import make_catalog, make_dataset, make_random_objects


class TestQueryBatch:
    def test_accepts_pairs_and_range_queries(self, universe):
        box = Box.cube((50.0, 50.0, 50.0), 10.0)
        batch = QueryBatch(
            [
                (box, [2, 0]),
                RangeQuery(qid=1, box=box, dataset_ids=(1,)),
            ]
        )
        assert len(batch) == 2
        assert batch.queries[0].requested == frozenset({0, 2})
        assert batch.queries[1].requested == frozenset({1})
        assert [q.index for q in batch] == [0, 1]

    def test_rejects_empty_combinations_and_junk(self):
        box = Box.cube((1.0, 1.0, 1.0), 1.0)
        with pytest.raises(ValueError, match="requests no datasets"):
            QueryBatch([(box, [])])
        with pytest.raises(TypeError):
            QueryBatch([42])
        with pytest.raises(TypeError):
            QueryBatch([("not a box", [0])])

    def test_groups_by_combination_preserving_order(self):
        box = Box.cube((1.0, 1.0, 1.0), 1.0)
        batch = QueryBatch([(box, [0, 1]), (box, [2]), (box, [1, 0])])
        groups = batch.groups()
        assert set(groups) == {frozenset({0, 1}), frozenset({2})}
        assert [q.index for q in groups[frozenset({0, 1})]] == [0, 2]
        assert batch.combinations() == {frozenset({0, 1}), frozenset({2})}


class TestLeafSnapshot:
    def _tree(self, disk, universe, count=400):
        dataset = make_dataset(disk, universe, count=count, seed=5)
        adaptor = Adaptor(OdysseyConfig(partitions_per_level=8))
        tree = adaptor.create_tree(dataset)
        adaptor.initialize(tree)
        return tree, adaptor

    def test_snapshot_is_cached_until_structure_changes(self, disk, universe):
        tree, adaptor = self._tree(disk, universe)
        first = tree.leaf_snapshot()
        assert tree.leaf_snapshot() is first
        assert first.version == tree.version
        leaf = max(tree.leaves(), key=lambda node: node.n_objects)
        adaptor.refine(tree, leaf)
        second = tree.leaf_snapshot()
        assert second is not first
        assert second.version == tree.version > first.version
        assert len(second.leaves) == len(first.leaves) + tree.partitions_per_level - 1

    def test_snapshot_arrays_match_leaf_boxes(self, disk, universe):
        tree, _ = self._tree(disk, universe)
        snapshot = tree.leaf_snapshot()
        assert snapshot.lo.shape == (len(snapshot.leaves), universe.dimension)
        for row, leaf in enumerate(snapshot.leaves):
            assert tuple(snapshot.lo[row]) == leaf.box.lo
            assert tuple(snapshot.hi[row]) == leaf.box.hi

    def test_batch_search_matches_scalar_search_and_order(self, disk, universe):
        tree, adaptor = self._tree(disk, universe)
        queries = [
            Box.cube((25.0, 25.0, 25.0), 30.0),
            Box.cube((80.0, 10.0, 60.0), 5.0),
            universe,
            Box((10.0, 10.0, 10.0), (10.0, 10.0, 10.0)),  # degenerate point
        ]
        # Refine a few leaves so the tree has mixed depths.
        for leaf in list(tree.leaves())[:3]:
            if leaf.n_objects:
                adaptor.refine(tree, leaf)
        batched = tree.leaves_overlapping_batch(queries)
        for box, leaves in zip(queries, batched):
            scalar = tree.leaves_overlapping(box)
            assert [l.key for l in leaves] == [l.key for l in scalar]

    def test_uninitialised_tree_raises(self, disk, universe):
        dataset = make_dataset(disk, universe, count=10, seed=1)
        tree = Adaptor(OdysseyConfig(partitions_per_level=8)).create_tree(dataset)
        with pytest.raises(RuntimeError):
            tree.leaf_snapshot()
        with pytest.raises(RuntimeError):
            tree.leaves_overlapping_batch([Box.cube((1.0, 1.0, 1.0), 1.0)])


class TestColumnarDecode:
    def test_dtype_layout_matches_codec(self):
        codec = spatial_object_codec(3)
        dtype = spatial_object_dtype(3)
        assert dtype.itemsize == codec.record_size
        objects = make_random_objects(Box.unit(3), 5, dataset_id=7, seed=2)
        packed = b"".join(codec.pack(obj) for obj in objects)
        decoded = np.frombuffer(packed, dtype=dtype)
        for row, obj in zip(decoded, objects):
            assert int(row["oid"]) == obj.oid
            assert int(row["dataset_id"]) == obj.dataset_id
            assert tuple(row["lo"]) == obj.box.lo
            assert tuple(row["hi"]) == obj.box.hi

    def test_read_set_roundtrips_and_dedupes(self, disk, universe):
        dataset = make_dataset(disk, universe, count=150, seed=9)
        adaptor = Adaptor(OdysseyConfig(partitions_per_level=8))
        tree = adaptor.create_tree(dataset)
        adaptor.initialize(tree)
        read_set = BatchReadSet(universe.dimension)
        leaf = max(tree.leaves(), key=lambda node: node.n_objects)
        group = read_set.read(tree.file, leaf.run)
        expected = tree.read_partition(leaf)
        assert group.n_records == len(expected)
        materialized = group.materialize(np.ones(group.n_records, dtype=bool))
        assert materialized == expected
        pages_before = disk.stats.pages_read
        again = read_set.read(tree.file, leaf.run)
        assert again is group
        assert disk.stats.pages_read == pages_before
        assert read_set.group_reads == 2
        assert read_set.dedup_hits == 1


class TestQueryBatchExecution:
    def _odyssey(self, disk, universe, n_datasets=3):
        catalog = make_catalog(disk, universe, n_datasets=n_datasets, count=250)
        return SpaceOdyssey(catalog, OdysseyConfig(partitions_per_level=8))

    def test_empty_batch_is_a_noop(self, disk, universe):
        odyssey = self._odyssey(disk, universe)
        result = odyssey.query_batch([])
        assert len(result) == 0
        assert result.reports == []
        assert odyssey.summary().queries_executed == 0

    def test_single_query_batch_equals_sequential(self, disk, universe, model):
        from repro.storage.disk import Disk

        box = Box.cube((40.0, 40.0, 40.0), 25.0)
        seq_disk = Disk(model=model, buffer_pages=0)
        seq = self._odyssey(seq_disk, universe)
        expected = seq.query(box, [0, 2])

        odyssey = self._odyssey(disk, universe)
        result = odyssey.query_batch([(box, [0, 2])])
        assert len(result) == 1
        assert result[0] == expected
        assert result.hit_counts() == [len(expected)]
        assert result.total_results() == len(expected)
        report = result.reports[0]
        assert report.results == len(expected)
        assert report.requested == (0, 2)
        assert odyssey.last_report is report
        assert odyssey.summary().queries_executed == 1

    def test_duplicate_queries_share_page_reads(self, disk, universe):
        odyssey = self._odyssey(disk, universe)
        box = Box.cube((50.0, 50.0, 50.0), 30.0)
        result = odyssey.query_batch([(box, [0, 1]), (box, [0, 1]), (box, [0, 1])])
        assert result.group_reads_deduped > 0
        assert result.hit_counts()[0] == result.hit_counts()[1] == result.hit_counts()[2]
        keys = [{obj.key() for obj in hits} for hits in result.results]
        assert keys[0] == keys[1] == keys[2]

    def test_unknown_dataset_id_fails_before_any_state_change(self, disk, universe):
        odyssey = self._odyssey(disk, universe)
        box = Box.cube((10.0, 10.0, 10.0), 5.0)
        with pytest.raises(KeyError):
            odyssey.query_batch([(box, [0]), (box, [99])])
        # The failing batch must not have executed its valid prefix.
        assert odyssey.summary().queries_executed == 0
        assert odyssey.trees == {}

    def test_workload_object_is_accepted(self, disk, universe):
        from repro.bench.runner import generate_workload

        odyssey = self._odyssey(disk, universe)
        workload = generate_workload(
            universe,
            odyssey.catalog.dataset_ids(),
            6,
            seed=4,
            datasets_per_query=2,
            volume_fraction=1e-2,
        )
        result = odyssey.query_batch(workload)
        assert len(result) == 6
        assert odyssey.summary().queries_executed == 6
