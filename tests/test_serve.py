"""Unit tests for the multi-tenant serving frontend (repro.serve).

Covers the dynamic batcher's two flush triggers, per-request
result/exception routing, backpressure, clean shutdown in both drain and
abort modes, and the service's bookkeeping invariants.  The determinism
contract (served results == sequential arrival-order execution) has its
own oracle in ``tests/test_serve_differential.py``.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.config import OdysseyConfig
from repro.core.odyssey import SpaceOdyssey
from repro.geometry.box import Box
from repro.serve import QueryService, ServiceClosed

from tests.test_batch_differential import packed_hits


@pytest.fixture
def engine(suite) -> SpaceOdyssey:
    return SpaceOdyssey(suite.catalog, OdysseyConfig())


def window(suite, side: float = 60.0, center=(4000.0, 3000.0, 2500.0)) -> Box:
    return Box.cube(center, side).clamp(suite.universe)


class TestSubmission:
    def test_submit_returns_future_with_exact_answer(self, suite, engine):
        reference = SpaceOdyssey(suite.fork().catalog, OdysseyConfig())
        box = window(suite)
        with engine.serve(max_batch=4, max_delay_ms=2) as service:
            submission = service.submit(box, [0, 1])
            hits = submission.result(timeout=30)
        expected = reference.query(box, [0, 1])
        assert packed_hits(engine, hits) == packed_hits(reference, expected)
        assert submission.done()
        assert submission.exception() is None

    def test_query_convenience_blocks_for_result(self, suite, engine):
        with engine.serve(max_batch=2, max_delay_ms=1) as service:
            hits = service.query(window(suite), [0], timeout=30)
        assert isinstance(hits, list)

    def test_sequence_numbers_are_arrival_ordered(self, suite, engine):
        with engine.serve(max_batch=8, max_delay_ms=1) as service:
            submissions = [service.submit(window(suite), [0]) for _ in range(5)]
            for submission in submissions:
                submission.result(timeout=30)
        assert [s.seq for s in submissions] == [0, 1, 2, 3, 4]

    def test_invalid_parameters_rejected(self, engine):
        with pytest.raises(ValueError):
            QueryService(engine, max_batch=0)
        with pytest.raises(ValueError):
            QueryService(engine, max_delay_ms=-1)
        with pytest.raises(ValueError):
            QueryService(engine, workers=0)
        with pytest.raises(ValueError):
            QueryService(engine, max_pending=0)


class TestBatchingTriggers:
    def test_size_trigger_flushes_full_batches(self, suite, engine):
        # The deadline is far away, so only the size trigger can flush.
        with engine.serve(max_batch=4, max_delay_ms=10_000) as service:
            submissions = [service.submit(window(suite), [0, 1]) for _ in range(8)]
            for submission in submissions:
                submission.result(timeout=30)
            stats = service.stats
        assert stats.batches == 2
        assert stats.size_flushes == 2
        assert stats.deadline_flushes == 0
        assert stats.max_batch_size == 4
        assert stats.queries_batched == 8

    def test_deadline_trigger_flushes_partial_batches(self, suite, engine):
        # The batch can hold far more than we submit, so only the deadline
        # (or the closing drain) can flush.
        with engine.serve(max_batch=1000, max_delay_ms=5) as service:
            submissions = [service.submit(window(suite), [0]) for _ in range(3)]
            for submission in submissions:
                submission.result(timeout=30)
            stats = service.stats
        assert stats.batches >= 1
        assert stats.size_flushes == 0
        assert stats.deadline_flushes >= 1
        assert stats.queries_batched == 3

    def test_flush_reasons_partition_batches(self, suite, engine):
        with engine.serve(max_batch=4, max_delay_ms=3) as service:
            submissions = [service.submit(window(suite), [0]) for _ in range(10)]
            for submission in submissions:
                submission.result(timeout=30)
        stats = service.stats
        assert (
            stats.size_flushes + stats.deadline_flushes + stats.drain_flushes
            == stats.batches
        )
        assert stats.queries_batched == 10


class TestExceptionPropagation:
    def test_bad_query_fails_only_its_own_future(self, suite, engine):
        box = window(suite)
        with engine.serve(max_batch=4, max_delay_ms=5) as service:
            good_before = service.submit(box, [0])
            bad = service.submit(box, [9999])  # unknown dataset id
            good_after = service.submit(box, [1])
            assert isinstance(good_before.result(timeout=30), list)
            assert isinstance(good_after.result(timeout=30), list)
            with pytest.raises(KeyError):
                bad.result(timeout=30)
        stats = service.stats
        assert stats.completed == 2
        assert stats.failed == 1
        assert stats.fallbacks >= 1

    def test_service_keeps_serving_after_a_failed_batch(self, suite, engine):
        box = window(suite)
        with engine.serve(max_batch=2, max_delay_ms=2) as service:
            bad = service.submit(box, [12345])
            with pytest.raises(KeyError):
                bad.result(timeout=30)
            follow_up = service.submit(box, [0, 1])
            assert isinstance(follow_up.result(timeout=30), list)

    def test_empty_dataset_ids_fail_through_the_future(self, suite, engine):
        with engine.serve(max_batch=2, max_delay_ms=2) as service:
            bad = service.submit(window(suite), [])
            assert isinstance(bad.exception(timeout=30), ValueError)


class TestShutdown:
    def test_close_drain_executes_everything_queued(self, suite, engine):
        service = engine.serve(max_batch=1000, max_delay_ms=10_000)
        submissions = [service.submit(window(suite), [0, 1]) for _ in range(5)]
        service.close()  # drain: the queued batch runs as a drain flush
        for submission in submissions:
            assert isinstance(submission.result(timeout=30), list)
        stats = service.stats
        assert stats.completed == 5
        assert stats.drain_flushes == 1

    def test_close_abort_fails_pending_with_service_closed(self, suite, engine):
        service = engine.serve(max_batch=1000, max_delay_ms=10_000)
        submissions = [service.submit(window(suite), [0]) for _ in range(3)]
        service.close(drain=False)
        for submission in submissions:
            assert isinstance(submission.exception(timeout=30), ServiceClosed)
        assert service.stats.failed == 3

    def test_submit_after_close_raises(self, suite, engine):
        service = engine.serve(max_batch=2, max_delay_ms=1)
        service.close()
        with pytest.raises(ServiceClosed):
            service.submit(window(suite), [0])
        assert service.closed

    def test_close_is_idempotent(self, suite, engine):
        service = engine.serve(max_batch=2, max_delay_ms=1)
        service.close()
        service.close()
        service.close(drain=False)

    def test_engine_fully_usable_after_close(self, suite, engine):
        box = window(suite)
        with engine.serve(max_batch=2, max_delay_ms=1) as service:
            service.query(box, [0, 1], timeout=30)
        # The gate lock was released on shutdown: direct queries, batches
        # and even a fresh service all still work.
        assert isinstance(engine.query(box, [0, 1]), list)
        assert len(engine.query_batch([(box, [0, 1])])) == 1
        with engine.serve(max_batch=2, max_delay_ms=1) as second:
            assert isinstance(second.query(box, [2], timeout=30), list)

    def test_context_manager_drains_on_clean_exit(self, suite, engine):
        with engine.serve(max_batch=1000, max_delay_ms=10_000) as service:
            submission = service.submit(window(suite), [0])
        assert isinstance(submission.result(timeout=30), list)
        assert service.closed


class TestConcurrentClients:
    def test_many_clients_all_get_answers(self, suite, engine):
        n_clients, per_client = 4, 10
        box = window(suite)
        errors: list[BaseException] = []
        barrier = threading.Barrier(n_clients)

        with engine.serve(max_batch=8, max_delay_ms=2, workers=2) as service:

            def client(index: int) -> None:
                try:
                    barrier.wait(timeout=30)
                    for round_no in range(per_client):
                        hits = service.query(box, [index % 4, (index + round_no) % 4], timeout=60)
                        assert isinstance(hits, list)
                except BaseException as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(index,))
                for index in range(n_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
                assert not thread.is_alive(), "client thread hung"
        assert not errors, f"clients raised: {errors!r}"
        stats = service.stats
        assert stats.submitted == n_clients * per_client
        assert stats.completed == n_clients * per_client
        assert stats.failed == 0
        assert stats.queries_batched == stats.submitted
        assert engine.summary().queries_executed == n_clients * per_client

    def test_direct_queries_interleave_with_the_service(self, suite, engine):
        box = window(suite)
        with engine.serve(max_batch=4, max_delay_ms=2) as service:
            submission = service.submit(box, [0, 1])
            direct = engine.query(box, [2, 3])  # through the gate, no service
            assert isinstance(direct, list)
            assert isinstance(submission.result(timeout=30), list)

    def test_backpressure_bound_blocks_then_recovers(self, suite, engine):
        # A tiny pending bound with a fast dispatcher: submissions may
        # momentarily block but must all complete.
        with engine.serve(max_batch=2, max_delay_ms=1, max_pending=2) as service:
            submissions = [service.submit(window(suite), [0]) for _ in range(10)]
            for submission in submissions:
                assert isinstance(submission.result(timeout=60), list)
        assert service.stats.completed == 10
