"""Concurrency stress: one engine, several application threads.

The engine's concurrency model (see
:class:`~repro.core.query_processor.QueryProcessor`) is a gate lock that
serializes top-level ``query``/``query_batch`` calls, with thread
parallelism living *inside* a batch.  These tests hammer that contract:

* N threads issue interleaved ``query`` and ``query_batch(workers=K)``
  calls against one shared engine over a sharded buffer pool;
* no call may raise and no internal structure may corrupt — every
  bookkeeping invariant that ties the pool, the disk accounting and the
  engine counters together must hold afterwards;
* every query's answer must equal a fresh single-threaded replay on a
  byte-identical fork (compared as packed-object byte sets: answers are
  exact and state-independent, so they are invariant under whichever
  serialization the gate lock produced).
"""

from __future__ import annotations

import threading

import pytest

from repro.bench.runner import generate_workload
from repro.core.config import OdysseyConfig
from repro.core.odyssey import SpaceOdyssey
from repro.data.suite import build_benchmark_suite
from repro.storage.buffer import BufferCounters
from repro.storage.cost_model import DiskModel

from tests.test_batch_differential import packed_hits

N_THREADS = 4
QUERIES_PER_THREAD = 12


@pytest.fixture(scope="module")
def stress_suite():
    return build_benchmark_suite(
        n_datasets=4,
        objects_per_dataset=700,
        seed=29,
        buffer_pages=192,
        buffer_shards=4,
        model=DiskModel(seek_time_s=1e-4),
    )


def _thread_workload(stress_suite, thread_index: int):
    return list(
        generate_workload(
            stress_suite.universe,
            stress_suite.catalog.dataset_ids(),
            QUERIES_PER_THREAD,
            seed=1000 + thread_index,
            datasets_per_query=2,
            volume_fraction=5e-3,
            ranges="clustered" if thread_index % 2 else "uniform",
            ids_distribution="zipf",
        )
    )


def test_interleaved_query_and_batch_threads(stress_suite):
    config = OdysseyConfig(
        merge_threshold=1,
        min_merge_combination=2,
        merge_partition_min_hits=1,
        merge_only_converged=False,
    )
    engine = SpaceOdyssey(stress_suite.fork().catalog, config)
    workloads = [_thread_workload(stress_suite, t) for t in range(N_THREADS)]
    answers: list[list[tuple]] = [[] for _ in range(N_THREADS)]
    errors: list[BaseException] = []
    barrier = threading.Barrier(N_THREADS)

    def worker(thread_index: int) -> None:
        try:
            barrier.wait(timeout=30)
            workload = workloads[thread_index]
            # Alternate execution styles so single queries, serial batches
            # and parallel batches all interleave through the gate.
            for start in range(0, len(workload), 3):
                chunk = workload[start : start + 3]
                style = (thread_index + start) % 3
                if style == 0:
                    for query in chunk:
                        hits = engine.query(query.box, query.dataset_ids)
                        answers[thread_index].append((query, hits))
                elif style == 1:
                    result = engine.query_batch(chunk)
                    answers[thread_index].extend(zip(chunk, result.results))
                else:
                    result = engine.query_batch(chunk, workers=2)
                    answers[thread_index].extend(zip(chunk, result.results))
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(index,), name=f"stress-{index}")
        for index in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive(), "stress thread hung"
    assert not errors, f"stress threads raised: {errors!r}"

    total_queries = N_THREADS * QUERIES_PER_THREAD
    assert sum(len(per_thread) for per_thread in answers) == total_queries
    assert engine.summary().queries_executed == total_queries

    # --- no corruption: pool, disk accounting and shards stay consistent --- #
    pool = engine.disk.buffer_pool
    aggregated = BufferCounters()
    for shard_snapshot in pool.shard_counters():
        aggregated = aggregated + shard_snapshot
    assert aggregated == pool.counters(), "shard counters do not sum to the totals"
    # Every byte-layer lookup went through the disk, so the pool's totals
    # must reconcile exactly with the sequential I/O accounting: hits with
    # recorded cache hits, misses with pages read from the backend.
    assert pool.hits == engine.disk.stats.cache_hits
    assert pool.misses == engine.disk.stats.pages_read
    assert len(pool) <= pool.capacity_pages

    # Partition trees must be structurally intact: every leaf reachable,
    # object counts preserved per dataset.
    for dataset_id, tree in engine.trees.items():
        assert tree.n_objects == stress_suite.catalog.get(dataset_id).n_objects

    # --- every answer matches a fresh single-threaded replay --- #
    replay = SpaceOdyssey(stress_suite.fork().catalog, config)
    for thread_index in range(N_THREADS):
        for query, hits in answers[thread_index]:
            expected = replay.query(query.box, query.dataset_ids)
            assert packed_hits(engine, hits) == packed_hits(replay, expected), (
                f"thread {thread_index} got wrong hits for {query!r}"
            )


def test_concurrent_batches_on_one_engine_match_serial_totals(stress_suite):
    """Many threads firing parallel batches == the same queries run serially."""
    config = OdysseyConfig()
    engine = SpaceOdyssey(stress_suite.fork().catalog, config)
    workload = _thread_workload(stress_suite, 0) * 2  # duplicates included
    chunks = [workload[index::N_THREADS] for index in range(N_THREADS)]
    collected: list[list] = [[] for _ in range(N_THREADS)]
    errors: list[BaseException] = []

    def worker(index: int) -> None:
        try:
            result = engine.query_batch(chunks[index], workers=3)
            collected[index] = list(result.results)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(index,)) for index in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors, f"threads raised: {errors!r}"

    serial = SpaceOdyssey(stress_suite.fork().catalog, config)
    for index in range(N_THREADS):
        for query, hits in zip(chunks[index], collected[index]):
            expected = serial.query(query.box, query.dataset_ids)
            assert packed_hits(engine, hits) == packed_hits(serial, expected)
    assert engine.summary().queries_executed == len(workload)


def test_interleaved_process_batches(stress_suite):
    """Process-pool batches interleave with thread batches and single queries."""
    config = OdysseyConfig(
        merge_threshold=1,
        min_merge_combination=2,
        merge_partition_min_hits=1,
        merge_only_converged=False,
    )
    engine = SpaceOdyssey(stress_suite.fork().catalog, config)
    workloads = [_thread_workload(stress_suite, t) for t in range(N_THREADS)]
    answers: list[list[tuple]] = [[] for _ in range(N_THREADS)]
    errors: list[BaseException] = []
    barrier = threading.Barrier(N_THREADS)

    def worker(thread_index: int) -> None:
        try:
            barrier.wait(timeout=30)
            workload = workloads[thread_index]
            for start in range(0, len(workload), 3):
                chunk = workload[start : start + 3]
                style = (thread_index + start) % 3
                if style == 0:
                    result = engine.query_batch(chunk, workers=2, executor="process")
                    answers[thread_index].extend(zip(chunk, result.results))
                elif style == 1:
                    result = engine.query_batch(chunk, workers=2)
                    answers[thread_index].extend(zip(chunk, result.results))
                else:
                    for query in chunk:
                        hits = engine.query(query.box, query.dataset_ids)
                        answers[thread_index].append((query, hits))
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(index,), name=f"proc-stress-{index}")
        for index in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=180)
        assert not thread.is_alive(), "stress thread hung"
    assert not errors, f"stress threads raised: {errors!r}"

    total_queries = N_THREADS * QUERIES_PER_THREAD
    assert engine.summary().queries_executed == total_queries
    pool = engine.disk.buffer_pool
    assert pool.hits == engine.disk.stats.cache_hits
    assert pool.misses == engine.disk.stats.pages_read

    replay = SpaceOdyssey(stress_suite.fork().catalog, config)
    for thread_index in range(N_THREADS):
        for query, hits in answers[thread_index]:
            expected = replay.query(query.box, query.dataset_ids)
            assert packed_hits(engine, hits) == packed_hits(replay, expected), (
                f"thread {thread_index} got wrong hits for {query!r}"
            )


def test_process_batches_under_fault_campaign(stress_suite):
    """Process batches over a faulty backend: retries absorb every fault.

    Staging reads go through the normal charged read path in the parent,
    so the retry layer sees (and absorbs) every injected fault before a
    single byte crosses the process boundary — zero client-visible
    errors, and the fault run's answers, adaptive state and on-disk bytes
    are bit-identical to a clean serial run of the same chunks.
    """
    from repro.storage.faults import FaultInjectingBackend, FaultPlan
    from repro.storage.retry import RetryingBackend, RetryPolicy

    from tests.test_batch_differential import adaptive_state, disk_files
    from tests.test_recovery import fork_with

    config = OdysseyConfig(
        merge_threshold=1,
        min_merge_combination=2,
        merge_partition_min_hits=1,
        merge_only_converged=False,
    )
    plan = FaultPlan(
        seed=23,
        read_error_rate=0.03,
        write_error_rate=0.03,
        corrupt_read_rate=0.02,
        torn_write_rate=0.02,
    )
    policy = RetryPolicy(max_attempts=8, seed=23)
    faulty = fork_with(
        stress_suite,
        lambda backend: RetryingBackend(
            FaultInjectingBackend(backend, plan), policy, sleep=lambda _s: None
        ),
    )
    engine = SpaceOdyssey(faulty.catalog, config)
    clean = SpaceOdyssey(stress_suite.fork().catalog, config)
    workload = _thread_workload(stress_suite, 1)
    for start in range(0, len(workload), 3):
        chunk = workload[start : start + 3]
        faulty_result = engine.query_batch(chunk, workers=2, executor="process")
        clean_result = clean.query_batch(chunk)
        assert faulty_result.results == clean_result.results  # order included

    retrying = engine.disk.backend
    fault = retrying.inner
    fault.disarm()
    counters = fault.counters()
    injected = (
        counters.transient_read_errors
        + counters.transient_write_errors
        + counters.reads_corrupted
        + counters.torn_writes
    )
    assert injected > 0, "the campaign injected no faults at all"
    assert retrying.counters().exhausted == 0, "a retry budget was exhausted"
    assert adaptive_state(engine) == adaptive_state(clean)
    assert disk_files(engine) == disk_files(clean)
