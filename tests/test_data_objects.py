"""Unit tests for SpatialObject."""

from __future__ import annotations

import pytest

from repro.data.spatial_object import SpatialObject
from repro.geometry.box import Box


class TestSpatialObject:
    def test_basic_properties(self):
        obj = SpatialObject(oid=5, dataset_id=2, box=Box((0.0, 0.0), (2.0, 4.0)))
        assert obj.center == (1.0, 2.0)
        assert obj.dimension == 2
        assert obj.key() == (2, 5)

    def test_intersects_delegates_to_box(self):
        obj = SpatialObject(oid=0, dataset_id=0, box=Box((0.0,), (1.0,)))
        assert obj.intersects(Box((0.5,), (2.0,)))
        assert not obj.intersects(Box((1.5,), (2.0,)))

    def test_immutability(self):
        obj = SpatialObject(oid=0, dataset_id=0, box=Box((0.0,), (1.0,)))
        with pytest.raises(AttributeError):
            obj.oid = 1  # type: ignore[misc]

    def test_equality_and_hashing(self):
        a = SpatialObject(oid=1, dataset_id=0, box=Box((0.0,), (1.0,)))
        b = SpatialObject(oid=1, dataset_id=0, box=Box((0.0,), (1.0,)))
        assert a == b
        assert len({a, b}) == 1
