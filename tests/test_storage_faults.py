"""Unit tests for checksummed pages, fault injection and retry/backoff."""

from __future__ import annotations

import pytest

from repro.storage.backend import InMemoryBackend, StorageBackend
from repro.storage.codec import (
    FixedRecordCodec,
    decode_page,
    encode_page,
    page_checksum,
    page_intact,
    verify_page,
)
from repro.storage.cost_model import DiskModel
from repro.storage.disk import Disk
from repro.storage.errors import (
    CorruptPageError,
    MissingFileError,
    SimulatedCrash,
    TransientIOError,
    is_transient,
)
from repro.storage.faults import FaultInjectingBackend, FaultPlan
from repro.storage.retry import RetryingBackend, RetryPolicy

PAGE = 256

int_codec = FixedRecordCodec("<q", lambda value: (value,), lambda fields: fields[0])


def make_page(records=(1, 2, 3)) -> bytes:
    return encode_page(int_codec, list(records), PAGE)


class TestChecksummedPages:
    def test_encoded_page_fills_page_size(self):
        page = make_page()
        assert len(page) == PAGE

    def test_roundtrip_verifies(self):
        page = make_page()
        verify_page(page)  # must not raise
        assert page_intact(page)
        assert decode_page(int_codec, page) == [1, 2, 3]

    @pytest.mark.parametrize("bit", [0, 37, PAGE * 8 - 1])
    def test_single_bit_flip_detected(self, bit):
        corrupted = bytearray(make_page())
        corrupted[bit // 8] ^= 1 << (bit % 8)
        corrupted = bytes(corrupted)
        assert not page_intact(corrupted)
        with pytest.raises(CorruptPageError):
            verify_page(corrupted)
        with pytest.raises(CorruptPageError):
            decode_page(int_codec, corrupted)

    def test_truncated_page_detected(self):
        with pytest.raises(CorruptPageError):
            verify_page(make_page()[:100])
        with pytest.raises(CorruptPageError):
            verify_page(b"")

    def test_corruption_in_zero_padding_detected(self):
        # The trailer covers the padding too: a flip between the last
        # record and the checksum cannot hide.
        page = bytearray(make_page([5]))
        page[PAGE // 2] ^= 0xFF
        assert not page_intact(bytes(page))

    def test_checksum_is_deterministic(self):
        assert page_checksum(b"abc") == page_checksum(b"abc")
        assert page_checksum(b"abc") != page_checksum(b"abd")


class TestErrorTaxonomy:
    def test_transient_classification(self):
        assert is_transient(TransientIOError("x"))
        assert is_transient(CorruptPageError("x"))
        assert not is_transient(MissingFileError("x"))
        assert not is_transient(ValueError("x"))

    def test_simulated_crash_is_not_an_exception(self):
        # Must escape every `except Exception` cleanup/retry layer.
        assert not issubclass(SimulatedCrash, Exception)
        assert issubclass(SimulatedCrash, BaseException)


class TestFaultPlan:
    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            FaultPlan(read_error_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(torn_write_rate=-0.1)

    def test_rejects_bad_crash_schedule(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_after_mutations=0)


def faulty(plan: FaultPlan) -> FaultInjectingBackend:
    backend = FaultInjectingBackend(InMemoryBackend(page_size=PAGE), plan)
    backend.create("f")
    return backend


class TestFaultInjection:
    def test_transient_read_error_leaves_bytes_intact(self):
        backend = faulty(FaultPlan(read_error_rate=1.0))
        backend.append("f", make_page())
        with pytest.raises(TransientIOError):
            backend.read("f", 0)
        backend.disarm()
        assert backend.read("f", 0) == make_page()
        assert backend.counters().transient_read_errors == 1

    def test_corrupt_read_does_not_touch_the_store(self):
        backend = faulty(FaultPlan(corrupt_read_rate=1.0))
        backend.append("f", make_page())
        corrupted = backend.read("f", 0)
        assert corrupted != make_page()
        with pytest.raises(CorruptPageError):
            verify_page(corrupted)
        backend.disarm()
        assert backend.read("f", 0) == make_page()  # in-flight, not persisted

    def test_transient_write_error_raises_before_mutating(self):
        backend = faulty(FaultPlan(write_error_rate=1.0))
        backend.disarm()
        backend.append("f", make_page([1]))
        backend.rearm()
        with pytest.raises(TransientIOError):
            backend.write("f", 0, make_page([2]))
        with pytest.raises(TransientIOError):
            backend.append("f", make_page([3]))
        backend.disarm()
        assert backend.read("f", 0) == make_page([1])
        assert backend.num_pages("f") == 1

    def test_torn_write_persists_detectable_corruption(self):
        backend = faulty(FaultPlan(torn_write_rate=1.0))
        backend.disarm()
        old = make_page([1, 2, 3])
        backend.append("f", old)
        backend.rearm()
        new = make_page([7, 8, 9, 10])  # different count: headers differ too
        with pytest.raises(TransientIOError):
            backend.write("f", 0, new)
        backend.disarm()
        torn = backend.read("f", 0)
        assert torn != old and torn != new
        with pytest.raises(CorruptPageError):
            verify_page(torn)  # the checksum trailer catches the tear
        # A retried full write heals the page.
        backend.write("f", 0, new)
        assert backend.read("f", 0) == new

    def test_crash_after_scheduled_mutation(self):
        backend = faulty(FaultPlan(crash_after_mutations=3, torn_crash=False))
        backend.append("f", make_page([0]))
        backend.append("f", make_page([1]))
        with pytest.raises(SimulatedCrash):
            backend.append("f", make_page([2]))
        backend.disarm()
        assert backend.num_pages("f") == 2  # the crashing append never landed

    def test_torn_crash_persists_a_torn_page(self):
        backend = faulty(FaultPlan(crash_after_mutations=2, torn_crash=True))
        backend.append("f", make_page([0]))
        with pytest.raises(SimulatedCrash):
            backend.write("f", 0, make_page([9, 10]))
        backend.disarm()
        with pytest.raises(CorruptPageError):
            verify_page(backend.read("f", 0))

    def test_named_crash_points(self):
        backend = faulty(FaultPlan(crash_points=frozenset({"journal.commit.torn"})))
        backend.maybe_crash("journal.commit.start")  # not armed: no crash
        with pytest.raises(SimulatedCrash) as info:
            backend.maybe_crash("journal.commit.torn")
        assert "journal.commit.torn" in str(info.value)
        backend.disarm()
        backend.maybe_crash("journal.commit.torn")  # disarmed: no crash

    def test_determinism_same_seed_same_faults(self):
        plan = FaultPlan(
            seed=42, read_error_rate=0.3, corrupt_read_rate=0.2, torn_write_rate=0.2
        )
        outcomes = []
        for _ in range(2):
            backend = faulty(plan)
            backend.disarm()
            for i in range(8):
                backend.append("f", make_page([i]))
            backend.rearm()
            log = []
            for i in range(8):
                try:
                    data = backend.read("f", i)
                    log.append(("ok", page_intact(data)))
                except TransientIOError:
                    log.append(("transient", None))
                try:
                    backend.write("f", i, make_page([i + 100]))
                    log.append("write-ok")
                except TransientIOError:
                    log.append("write-fault")
            outcomes.append((tuple(log), backend.counters()))
        assert outcomes[0] == outcomes[1]

    def test_clone_restarts_the_schedule(self):
        backend = faulty(FaultPlan(seed=9, read_error_rate=0.5))
        backend.disarm()
        backend.append("f", make_page())
        backend.rearm()
        copy = backend.clone()

        def trace(b):
            log = []
            for _ in range(6):
                try:
                    b.read("f", 0)
                    log.append("ok")
                except TransientIOError:
                    log.append("fault")
            return log

        assert trace(backend) == trace(copy)

    def test_metadata_operations_never_fault(self):
        backend = faulty(
            FaultPlan(read_error_rate=1.0, write_error_rate=1.0)
        )
        assert backend.exists("f")
        assert backend.num_pages("f") == 0
        assert backend.list_files() == ["f"]


class FlakyBackend(StorageBackend):
    """Fails reads/writes with a scripted error a fixed number of times."""

    def __init__(self, inner: StorageBackend, failures: int, error=None):
        super().__init__(inner.page_size)
        self.inner = inner
        self.remaining = failures
        self.error = error or TransientIOError("flaky")

    def _maybe_fail(self):
        if self.remaining > 0:
            self.remaining -= 1
            raise self.error

    def create(self, name):
        self.inner.create(name)

    def delete(self, name):
        self.inner.delete(name)

    def exists(self, name):
        return self.inner.exists(name)

    def list_files(self):
        return self.inner.list_files()

    def num_pages(self, name):
        return self.inner.num_pages(name)

    def clone(self):
        raise NotImplementedError

    def read(self, name, page_no):
        self._maybe_fail()
        return self.inner.read(name, page_no)

    def write(self, name, page_no, data):
        self._maybe_fail()
        self.inner.write(name, page_no, data)

    def append(self, name, data):
        self._maybe_fail()
        return self.inner.append(name, data)


def flaky_retrying(failures, error=None, **kwargs):
    inner = InMemoryBackend(page_size=PAGE)
    inner.create("f")
    inner.append("f", make_page())
    sleeps: list[float] = []
    backend = RetryingBackend(
        FlakyBackend(inner, failures, error),
        kwargs.pop("policy", RetryPolicy()),
        sleep=sleeps.append,
        **kwargs,
    )
    return backend, sleeps


class TestRetryingBackend:
    def test_transient_faults_absorbed(self):
        backend, sleeps = flaky_retrying(failures=3)
        assert backend.read("f", 0) == make_page()
        assert backend.counters().retries == 3
        assert backend.counters().exhausted == 0
        assert len(sleeps) == 3

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.001, jitter=0.0)
        backend, sleeps = flaky_retrying(failures=4, policy=policy)
        backend.read("f", 0)
        assert sleeps == [0.001, 0.002, 0.004, 0.008]

    def test_backoff_caps_at_max_delay(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=0.04, max_delay_s=0.05, jitter=0.0
        )
        backend, sleeps = flaky_retrying(failures=4, policy=policy)
        backend.read("f", 0)
        assert sleeps == [0.04, 0.05, 0.05, 0.05]

    def test_exhaustion_surfaces_the_last_error(self):
        backend, _ = flaky_retrying(failures=100)
        with pytest.raises(TransientIOError):
            backend.read("f", 0)
        counters = backend.counters()
        assert counters.exhausted == 1
        assert counters.retries == backend.policy.max_attempts - 1

    def test_permanent_errors_not_retried(self):
        backend, sleeps = flaky_retrying(
            failures=100, error=MissingFileError("gone")
        )
        with pytest.raises(MissingFileError):
            backend.read("f", 0)
        assert sleeps == []  # immediate surface, no backoff
        assert backend.counters().retries == 0

    def test_simulated_crash_not_absorbed(self):
        backend, sleeps = flaky_retrying(failures=1, error=SimulatedCrash("boom"))
        with pytest.raises(SimulatedCrash):
            backend.read("f", 0)
        assert sleeps == []

    def test_write_and_append_retried(self):
        backend, _ = flaky_retrying(failures=2)
        backend.write("f", 0, make_page([9]))
        assert backend.counters().retries == 2
        backend2, _ = flaky_retrying(failures=2)
        assert backend2.append("f", make_page([5])) == 1

    def test_in_flight_corruption_healed_by_reread(self):
        inner = InMemoryBackend(page_size=PAGE)
        sleeps: list[float] = []
        backend = RetryingBackend(
            FaultInjectingBackend(inner, FaultPlan(corrupt_read_rate=0.5, seed=3)),
            sleep=sleeps.append,
        )
        backend.create("f")
        backend.append("f", make_page())
        for _ in range(20):
            assert backend.read("f", 0) == make_page()
        counters = backend.counters()
        assert counters.corrupt_reads_detected > 0  # some reads came corrupted
        assert counters.exhausted == 0  # every one healed on re-read

    def test_persisted_corruption_exhausts_the_budget(self):
        inner = InMemoryBackend(page_size=PAGE)
        inner.create("f")
        inner.append("f", b"not a sealed codec page")
        backend = RetryingBackend(inner, sleep=lambda _s: None)
        with pytest.raises(CorruptPageError):
            backend.read("f", 0)
        assert backend.counters().exhausted == 1

    def test_verify_reads_off_passes_raw_pages(self):
        inner = InMemoryBackend(page_size=PAGE)
        inner.create("f")
        inner.append("f", b"raw bytes, no trailer")
        backend = RetryingBackend(inner, verify_reads=False, sleep=lambda _s: None)
        assert backend.read("f", 0).startswith(b"raw bytes")

    def test_listener_sees_events(self):
        events = []
        backend, _ = flaky_retrying(failures=100)
        backend.add_retry_listener(events.append)
        with pytest.raises(TransientIOError):
            backend.read("f", 0)
        assert events.count("retry") == backend.policy.max_attempts - 1
        assert events.count("exhausted") == 1


class TestDiskRetryObservability:
    def test_retry_activity_folds_into_iostats(self):
        inner = InMemoryBackend(page_size=4096)
        flaky = FlakyBackend(inner, failures=0)
        disk = Disk(
            backend=RetryingBackend(flaky, sleep=lambda _s: None),
            model=DiskModel(page_size=4096),
        )
        disk.create_file("f")
        disk.append_page("f", encode_page(int_codec, [1], 4096))
        flaky.remaining = 2
        disk.read_page("f", 0)  # retried twice below the Disk facade
        assert disk.stats.retries == 2
        assert disk.stats.retry_giveups == 0

    def test_exhaustion_counts_as_giveup(self):
        inner = InMemoryBackend(page_size=4096)
        flaky = FlakyBackend(inner, failures=0)
        disk = Disk(
            backend=RetryingBackend(flaky, sleep=lambda _s: None),
            model=DiskModel(page_size=4096),
        )
        disk.create_file("f")
        disk.append_page("f", encode_page(int_codec, [1], 4096))
        flaky.remaining = 10_000
        with pytest.raises(TransientIOError):
            disk.read_page("f", 0)
        assert disk.stats.retry_giveups == 1
        assert disk.stats.retries > 0
