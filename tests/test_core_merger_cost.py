"""Unit tests for the Merger component and the merge cost model."""

from __future__ import annotations

import pytest

from repro.core.adaptor import Adaptor
from repro.core.config import OdysseyConfig
from repro.core.cost import AdaptiveMergePolicy, MergeCostModel
from repro.core.merge import MergeDirectory
from repro.core.merger import Merger
from repro.core.statistics import StatisticsCollector
from repro.storage.cost_model import DiskModel

from tests.conftest import make_catalog


@pytest.fixture
def setup(disk, universe):
    """Catalog + initialised trees + merger wired together by hand."""
    catalog = make_catalog(disk, universe, n_datasets=3, count=300, seed=51)
    config = OdysseyConfig(
        partitions_per_level=8,
        merge_threshold=1,
        min_merge_combination=3,
        merge_partition_min_hits=1,
        merge_only_converged=False,
    )
    adaptor = Adaptor(config)
    trees = {}
    for dataset in catalog:
        tree = adaptor.create_tree(dataset)
        adaptor.initialize(tree)
        trees[dataset.dataset_id] = tree
    statistics = StatisticsCollector()
    directory = MergeDirectory()
    merger = Merger(disk, config, directory, statistics, dimension=3)
    return catalog, config, trees, statistics, directory, merger


def record_queries(statistics, trees, combination, keys, times=3):
    for _ in range(times):
        statistics.tick()
        statistics.record_query(
            combination, {ds: keys for ds in combination}, query_volume=1.0
        )


class TestMergerTriggers:
    def test_merges_after_threshold(self, setup):
        _, _, trees, statistics, directory, merger = setup
        combo = frozenset({0, 1, 2})
        keys = [next(iter(trees[0].leaves())).key]
        record_queries(statistics, trees, combo, keys, times=3)
        outcome = merger.maybe_merge(combo, trees)
        assert outcome.merged
        assert directory.get(combo) is not None
        assert merger.partitions_merged == len(keys) * 3  # one segment per dataset

    def test_below_threshold_skipped(self, setup):
        _, _, trees, statistics, directory, merger = setup
        combo = frozenset({0, 1, 2})
        keys = [next(iter(trees[0].leaves())).key]
        record_queries(statistics, trees, combo, keys, times=1)
        outcome = merger.maybe_merge(combo, trees)
        assert not outcome.merged
        assert outcome.skipped_reason == "below merge threshold"

    def test_small_combination_skipped(self, setup):
        _, _, trees, statistics, _, merger = setup
        combo = frozenset({0, 1})
        record_queries(statistics, trees, combo, [(0,)], times=5)
        outcome = merger.maybe_merge(combo, trees)
        assert not outcome.merged
        assert outcome.skipped_reason == "combination too small"

    def test_never_queried_combination(self, setup):
        _, _, trees, _, _, merger = setup
        outcome = merger.maybe_merge(frozenset({0, 1, 2}), trees)
        assert not outcome.merged

    def test_nothing_new_to_merge_is_noop(self, setup):
        _, _, trees, statistics, _, merger = setup
        combo = frozenset({0, 1, 2})
        keys = [next(iter(trees[0].leaves())).key]
        record_queries(statistics, trees, combo, keys, times=3)
        assert merger.maybe_merge(combo, trees).merged
        second = merger.maybe_merge(combo, trees)
        assert not second.merged
        assert second.skipped_reason == "nothing new to merge"

    def test_extension_with_new_partitions(self, setup):
        _, _, trees, statistics, directory, merger = setup
        combo = frozenset({0, 1, 2})
        leaves = list(trees[0].leaves())
        record_queries(statistics, trees, combo, [leaves[0].key], times=3)
        merger.maybe_merge(combo, trees)
        record_queries(statistics, trees, combo, [leaves[1].key], times=3)
        outcome = merger.maybe_merge(combo, trees)
        assert outcome.merged
        info = directory.get(combo)
        assert leaves[0].key in info.entries
        assert leaves[1].key in info.entries

    def test_merge_content_matches_originals(self, setup):
        _, _, trees, statistics, directory, merger = setup
        combo = frozenset({0, 1, 2})
        leaf = max(trees[0].leaves(), key=lambda n: n.n_objects)
        record_queries(statistics, trees, combo, [leaf.key], times=3)
        merger.maybe_merge(combo, trees)
        info = directory.get(combo)
        file = merger.merge_file(combo)
        for dataset_id in combo:
            original = {o.key() for o in trees[dataset_id].read_partition(trees[dataset_id].node(leaf.key))}
            copied = {o.key() for o in file.read_group(info.segment(leaf.key, dataset_id))}
            assert copied == original

    def test_key_missing_in_one_dataset_not_merged(self, setup):
        _, _, trees, statistics, directory, merger = setup
        combo = frozenset({0, 1, 2})
        # Refine the key in dataset 0 so its level differs from the others.
        adaptor = Adaptor(OdysseyConfig(partitions_per_level=8))
        leaf = max(trees[0].leaves(), key=lambda n: n.n_objects)
        key = leaf.key
        adaptor.refine(trees[0], leaf)
        record_queries(statistics, trees, combo, [key], times=3)
        outcome = merger.maybe_merge(combo, trees)
        assert not outcome.merged or key not in directory.get(combo).entries

    def test_merging_disabled(self, setup, disk):
        catalog, _, trees, statistics, directory, _ = setup
        config = OdysseyConfig(partitions_per_level=8, enable_merging=False)
        merger = Merger(disk, config, directory, statistics, dimension=3)
        outcome = merger.maybe_merge(frozenset({0, 1, 2}), trees)
        assert outcome.skipped_reason == "merging disabled"


class TestBudget:
    def test_eviction_keeps_most_recent(self, setup, disk):
        catalog, _, trees, statistics, directory, _ = setup
        config = OdysseyConfig(
            partitions_per_level=8,
            merge_threshold=1,
            min_merge_combination=2,
            merge_partition_min_hits=1,
            merge_only_converged=False,
            merge_space_budget_pages=2,
        )
        merger = Merger(disk, config, directory, statistics, dimension=3)
        busiest = sorted(trees[0].leaves(), key=lambda n: n.n_objects, reverse=True)
        combo_a = frozenset({0, 1})
        combo_b = frozenset({1, 2})
        record_queries(statistics, trees, combo_a, [busiest[0].key], times=3)
        merger.maybe_merge(combo_a, trees)
        record_queries(statistics, trees, combo_b, [busiest[0].key], times=3)
        outcome = merger.maybe_merge(combo_b, trees)
        assert outcome.merged
        # The newly created file is protected; the older one is the victim.
        if merger.evictions:
            assert directory.get(combo_b) is not None
            assert directory.get(combo_a) is None


class TestCostModel:
    def test_estimate_scales_with_combination_size(self, setup):
        _, _, trees, _, _, _ = setup
        model = MergeCostModel(DiskModel())
        keys = {next(iter(trees[0].leaves())).key}
        small = model.estimate(frozenset({0, 1}), keys, trees)
        large = model.estimate(frozenset({0, 1, 2}), keys, trees)
        assert large.per_query_benefit_s > small.per_query_benefit_s

    def test_breakeven_positive(self, setup):
        _, _, trees, _, _, _ = setup
        model = MergeCostModel(DiskModel())
        keys = {leaf.key for leaf in trees[0].leaves()}
        estimate = model.estimate(frozenset({0, 1, 2}), keys, trees)
        assert estimate.merge_cost_s > 0
        assert estimate.worthwhile_after >= 1

    def test_adaptive_policy_waits_for_breakeven(self, setup):
        _, _, trees, _, _, _ = setup
        cost_model = MergeCostModel(
            DiskModel(seek_time_s=1e-6, transfer_rate_bytes_per_s=4096 * 10)
        )
        policy = AdaptiveMergePolicy(cost_model, static_threshold=2)
        keys = {leaf.key for leaf in trees[0].leaves() if leaf.n_objects > 0}
        combo = frozenset({0, 1, 2})
        # With an extremely slow disk and cheap seeks, the breakeven count is
        # large, so a small access count must not trigger merging.
        assert not policy.should_merge(combo, access_count=3, keys=keys, trees=trees)
        assert policy.should_merge(combo, access_count=10_000_000, keys=keys, trees=trees)

    def test_adaptive_policy_respects_static_minimum(self, setup):
        _, _, trees, _, _, _ = setup
        policy = AdaptiveMergePolicy(MergeCostModel(DiskModel()), static_threshold=5)
        assert not policy.should_merge(frozenset({0, 1, 2}), 5, set(), trees)
