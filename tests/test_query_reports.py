"""Tests for the per-query diagnostics (QueryReport) and exploration summary.

These pin the observability surface the examples and the benchmark harness
rely on: which datasets were initialised, how partitions were routed, how
many refinements and merges a query triggered.
"""

from __future__ import annotations

import pytest

from repro.core.config import OdysseyConfig
from repro.core.odyssey import SpaceOdyssey
from repro.geometry.box import Box

from tests.conftest import make_catalog


@pytest.fixture
def odyssey(disk, universe):
    catalog = make_catalog(disk, universe, n_datasets=3, count=300, seed=71)
    config = OdysseyConfig(
        partitions_per_level=8,
        merge_threshold=1,
        min_merge_combination=3,
        merge_partition_min_hits=1,
        merge_only_converged=False,
    )
    return SpaceOdyssey(catalog, config)


HOT = Box.cube((50.0, 50.0, 50.0), 8.0)


class TestQueryReport:
    def test_first_query_report(self, odyssey):
        odyssey.query(HOT, [0, 2])
        report = odyssey.last_report
        assert report.query_index == 0
        assert report.requested == (0, 2)
        assert report.initialized_datasets == [0, 2]
        assert report.route == "none"
        assert report.partitions_read > 0
        assert report.partitions_from_merge == 0
        assert not report.used_merge_file
        assert report.results == len(odyssey.query(HOT, [0, 2]))  # deterministic answer

    def test_refinements_counted(self, odyssey):
        tiny = Box.cube((50.0, 50.0, 50.0), 1.0)
        odyssey.query(tiny, [0])
        assert odyssey.last_report.refinements >= 1

    def test_merge_reported_once_triggered(self, odyssey):
        for _ in range(3):
            odyssey.query(HOT, [0, 1, 2])
        reports_merged = []
        for _ in range(2):
            odyssey.query(HOT, [0, 1, 2])
            reports_merged.append(odyssey.last_report.used_merge_file)
        assert any(reports_merged)
        assert odyssey.last_report.route == "exact"

    def test_query_index_increments(self, odyssey):
        for expected in range(4):
            odyssey.query(HOT, [0])
            assert odyssey.last_report.query_index == expected

    def test_objects_examined_at_least_results(self, odyssey):
        results = odyssey.query(Box.cube((50.0, 50.0, 50.0), 30.0), [0, 1])
        report = odyssey.last_report
        assert report.objects_examined >= report.results == len(results)


class TestExplorationSummary:
    def test_summary_counts_are_consistent(self, odyssey):
        for _ in range(4):
            odyssey.query(HOT, [0, 1, 2])
        summary = odyssey.summary()
        assert summary.queries_executed == 4
        assert summary.datasets_initialized == 3
        assert summary.total_partitions == sum(
            tree.n_partitions for tree in odyssey.trees.values()
        )
        assert summary.merge_files == len(odyssey.merge_directory)
        assert summary.merge_pages == odyssey.merge_directory.total_pages()
        assert summary.merges_performed == odyssey.merger.merges_performed

    def test_summary_before_any_query(self, odyssey):
        summary = odyssey.summary()
        assert summary.queries_executed == 0
        assert summary.datasets_initialized == 0
        assert summary.total_partitions == 0
        assert summary.max_tree_depth == 0
