"""End-to-end tests with 2-D data.

The paper's datasets are 3-D, but the whole stack is dimension-generic
(space-oriented splitting uses ``ppl = splits ** d``); these tests pin that
property so the library stays usable for e.g. GIS-style 2-D exploration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.flat import FLATIndex
from repro.baselines.grid import GridIndex
from repro.baselines.interface import BruteForceScan, result_keys
from repro.baselines.rtree import STRRTree
from repro.core.config import OdysseyConfig
from repro.core.odyssey import SpaceOdyssey
from repro.data.dataset import Dataset, DatasetCatalog
from repro.data.spatial_object import SpatialObject, spatial_object_codec
from repro.geometry.box import Box
from repro.storage.cost_model import DiskModel
from repro.storage.disk import Disk

UNIVERSE_2D = Box((0.0, 0.0), (100.0, 100.0))


def make_2d_objects(count: int, dataset_id: int, seed: int) -> list[SpatialObject]:
    rng = np.random.default_rng(seed)
    objects = []
    for oid in range(count):
        center = rng.uniform((0.0, 0.0), (100.0, 100.0))
        box = Box.from_center(tuple(center), (1.0, 1.5)).clamp(UNIVERSE_2D)
        objects.append(SpatialObject(oid=oid, dataset_id=dataset_id, box=box))
    return objects


@pytest.fixture
def disk() -> Disk:
    return Disk(model=DiskModel(), buffer_pages=0)


@pytest.fixture
def catalog(disk) -> DatasetCatalog:
    datasets = [
        Dataset.create(disk, i, f"flat2d_{i}", make_2d_objects(250, i, seed=i), UNIVERSE_2D)
        for i in range(3)
    ]
    return DatasetCatalog(datasets)


QUERIES_2D = [
    Box.cube((30.0, 40.0), 12.0),
    Box.cube((80.0, 20.0), 6.0),
    Box((0.0, 0.0), (100.0, 5.0)),
]


def test_codec_2d_roundtrip():
    codec = spatial_object_codec(2)
    obj = SpatialObject(oid=1, dataset_id=2, box=Box((0.0, 1.0), (2.0, 3.0)))
    assert codec.unpack(codec.pack(obj)) == obj
    assert codec.record_size == 48


def test_static_indexes_2d_match_bruteforce(disk, catalog):
    dataset = catalog.get(0)
    raw = dataset.read_all()
    indexes = [
        GridIndex(disk, "g2", UNIVERSE_2D, cells_per_dim=8),
        STRRTree(disk, "r2", UNIVERSE_2D),
        FLATIndex(disk, "f2", UNIVERSE_2D),
    ]
    for index in indexes:
        index.build([dataset])
        for query in QUERIES_2D:
            expected = {o.key() for o in raw if o.intersects(query)}
            assert result_keys(index.query(query)) == expected


def test_odyssey_2d_uses_quadtree_splitting(catalog):
    config = OdysseyConfig(partitions_per_level=16, min_merge_combination=2, merge_threshold=1,
                           merge_partition_min_hits=1, merge_only_converged=False)
    odyssey = SpaceOdyssey(catalog, config)
    oracle = BruteForceScan(catalog)
    for query in QUERIES_2D * 2:
        assert result_keys(odyssey.query(query, [0, 1, 2])) == result_keys(
            oracle.query(query, [0, 1, 2])
        )
    tree = odyssey.trees[0]
    assert tree.splits_per_dim == 4  # 16 partitions per level in 2-D
    assert tree.partitions_per_level == 16


def test_odyssey_2d_rejects_3d_ppl(catalog):
    # 8 partitions per level is a perfect cube but not a perfect square.
    with pytest.raises(ValueError):
        SpaceOdyssey(catalog, OdysseyConfig(partitions_per_level=8))
