"""Unit tests for random box/point sampling helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.box import Box
from repro.geometry.random_boxes import (
    random_box_with_volume,
    random_point_in_box,
    sample_boxes,
)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture
def universe() -> Box:
    return Box((0.0, 0.0, 0.0), (10.0, 20.0, 30.0))


class TestRandomPoint:
    def test_point_inside_universe(self, rng, universe):
        for _ in range(50):
            point = random_point_in_box(rng, universe)
            assert universe.contains_point(point)

    def test_reproducible_with_same_seed(self, universe):
        a = random_point_in_box(np.random.default_rng(1), universe)
        b = random_point_in_box(np.random.default_rng(1), universe)
        assert a == b


class TestRandomBoxWithVolume:
    def test_volume_matches_fraction(self, rng, universe):
        box = random_box_with_volume(rng, universe, 1e-3, center=universe.center)
        assert box.volume() == pytest.approx(universe.volume() * 1e-3, rel=1e-6)

    def test_clamped_to_universe(self, rng, universe):
        # A centre on the corner forces clamping.
        box = random_box_with_volume(rng, universe, 1e-2, center=universe.lo)
        assert universe.contains_box(box)

    def test_rejects_bad_fraction(self, rng, universe):
        with pytest.raises(ValueError):
            random_box_with_volume(rng, universe, 0.0)
        with pytest.raises(ValueError):
            random_box_with_volume(rng, universe, 1.5)

    def test_aspect_jitter_keeps_volume_close(self, rng, universe):
        box = random_box_with_volume(
            rng, universe, 1e-3, center=universe.center, aspect_jitter=0.3
        )
        assert box.volume() == pytest.approx(universe.volume() * 1e-3, rel=0.05)


class TestSampleBoxes:
    def test_count_and_containment(self, rng, universe):
        boxes = sample_boxes(rng, universe, 25)
        assert len(boxes) == 25
        assert all(universe.contains_box(box) for box in boxes)

    def test_zero_count(self, rng, universe):
        assert sample_boxes(rng, universe, 0) == []

    def test_negative_count_rejected(self, rng, universe):
        with pytest.raises(ValueError):
            sample_boxes(rng, universe, -1)
