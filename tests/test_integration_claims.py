"""Integration tests for the paper's qualitative claims (DESIGN.md C1–C7).

These run miniature versions of the paper's experiments and check the
*shape* of the results — who wins, in which order, where the crossovers are.
Absolute values depend on the simulated disk model and the reduced scale
and are reported (not asserted) in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.baselines.interface import BruteForceScan, result_keys
from repro.bench.approaches import make_approach
from repro.bench.experiments import build_suite, build_workload
from repro.bench.runner import run_approach
from repro.bench.scales import SCALES


@pytest.fixture(scope="module")
def scale():
    """A reduced scale that still exhibits the paper's qualitative behaviour."""
    return SCALES["tiny"].scaled(n_queries=50)


@pytest.fixture(scope="module")
def suite(scale):
    return build_suite(scale)


@pytest.fixture(scope="module")
def clustered_zipf_workload(suite, scale):
    return build_workload(
        suite,
        scale,
        ranges="clustered",
        ids_distribution="zipf",
        datasets_per_query=3,
    )


@pytest.fixture(scope="module")
def runs(suite, scale, clustered_zipf_workload):
    """Run the Figure 4 approaches once and share the results across tests."""
    results = {}
    for name in ("FLAT-Ain1", "RTree-Ain1", "Grid-1fE", "Odyssey"):
        fork = suite.fork()
        approach = make_approach(name, fork, scale)
        results[name] = run_approach(approach, clustered_zipf_workload, fork.disk)
    return results


class TestClaimC1DataToQueryTime:
    def test_static_builds_exceed_odyssey_total_workload(self, runs):
        """Building FLAT (or the R-tree) costs more than Space Odyssey needs
        to answer the entire workload (paper: at least 2x)."""
        odyssey_total = runs["Odyssey"].total_seconds
        assert runs["FLAT-Ain1"].indexing_seconds > 1.5 * odyssey_total
        assert runs["RTree-Ain1"].indexing_seconds > 1.5 * odyssey_total

    def test_odyssey_needs_no_upfront_indexing(self, runs):
        assert runs["Odyssey"].indexing_seconds == 0.0


class TestClaimC2BuildOrdering:
    def test_flat_is_slowest_build_and_grid_fastest(self, runs):
        builds = {name: run.indexing_seconds for name, run in runs.items() if name != "Odyssey"}
        assert builds["FLAT-Ain1"] >= builds["RTree-Ain1"]
        assert builds["Grid-1fE"] == min(builds.values())

    def test_flat_build_much_slower_than_grid(self, runs):
        assert runs["FLAT-Ain1"].indexing_seconds > 3 * runs["Grid-1fE"].indexing_seconds


class TestClaimC3QueryOrdering:
    def test_flat_queries_fastest_once_built(self, runs):
        """Once built, FLAT answers individual queries fastest (paper C3).

        At the reduced test scale the gap between FLAT and the Grid narrows
        (sparse data means most Grid cells are empty and free to skip), so
        the assertion allows a margin; the full separation is visible at the
        ``small``/``medium`` scales and recorded in EXPERIMENTS.md.
        """
        flat = runs["FLAT-Ain1"].querying_seconds
        assert flat <= runs["Odyssey"].querying_seconds
        assert flat <= runs["Grid-1fE"].querying_seconds * 1.6


class TestClaimC5Convergence:
    def test_first_query_is_most_expensive_and_times_converge(self, runs):
        per_query = runs["Odyssey"].per_query_seconds()
        assert per_query[0] == max(per_query)
        tail = per_query[-10:]
        assert max(tail) < per_query[0] / 3

    def test_converged_queries_close_to_static_indexes(self, runs):
        odyssey_tail = sum(runs["Odyssey"].per_query_seconds()[-10:]) / 10
        flat_tail = sum(runs["FLAT-Ain1"].per_query_seconds()[-10:]) / 10
        assert odyssey_tail < 20 * flat_tail


class TestClaimC6UniformWorstCase:
    def test_uniform_uniform_erodes_odyssey_advantage(self, suite, scale):
        """With uniform ranges and uniform dataset ids (Fig. 4d) the adaptive
        mechanisms cannot exploit skew: Grid's total time beats Odyssey's."""
        workload = build_workload(
            suite,
            scale,
            ranges="uniform",
            ids_distribution="uniform",
            datasets_per_query=3,
            seed_offset=3,
        )
        totals = {}
        for name in ("Grid-1fE", "Odyssey"):
            fork = suite.fork()
            approach = make_approach(name, fork, scale)
            totals[name] = run_approach(approach, workload, fork.disk).total_seconds
        assert totals["Grid-1fE"] < totals["Odyssey"]


class TestClaimC7MergingBenefit:
    def test_merging_reduces_steady_state_time_for_hot_combination(self, suite, scale):
        """Repeatedly querying the same areas of a 3-dataset combination is
        cheaper with merging than without (Fig. 5c), once the merge file has
        been populated (the paper likewise reports the gain on queries that
        access the merged partitions)."""
        from repro.bench.approaches import odyssey_config_for
        from repro.core.odyssey import SpaceOdyssey
        from repro.geometry.box import Box

        centers = suite.generator.microcircuit_centers[:4]
        query_side = (suite.universe.volume() * scale.query_volume_fraction) ** (1 / 3)
        hot_boxes = [
            Box.cube(tuple(center), query_side).clamp(suite.universe) for center in centers
        ]
        combination = [0, 1, 2]
        warmup_rounds, measured_rounds = 4, 8
        totals = {}
        for enable_merging in (True, False):
            fork = suite.fork()
            odyssey = SpaceOdyssey(
                fork.catalog, odyssey_config_for(scale, enable_merging=enable_merging)
            )
            for _ in range(warmup_rounds):
                for box in hot_boxes:
                    fork.disk.clear_cache()
                    fork.disk.reset_head()
                    odyssey.query(box, combination)
            before = fork.disk.stats_snapshot()
            for _ in range(measured_rounds):
                for box in hot_boxes:
                    fork.disk.clear_cache()
                    fork.disk.reset_head()
                    odyssey.query(box, combination)
            totals[enable_merging] = fork.disk.stats.delta_since(before).simulated_seconds
            if enable_merging:
                assert odyssey.merger.merges_performed >= 1
        assert totals[True] < totals[False]

    def test_figure5c_merging_not_harmful_at_test_scale(self, scale):
        """The full Figure 5c pipeline runs end to end and merging does not
        make the popular combination substantially slower even at the very
        small test scale (the positive ~15-25% gain appears at the
        benchmark scales; see EXPERIMENTS.md)."""
        from repro.bench.experiments import figure5c

        result = figure5c(scale=scale.scaled(n_queries=60), datasets_per_query=3)
        assert result.popular_query_count > 10
        assert result.merges_performed >= 1
        assert result.total_gain_percent > -10.0


class TestEndToEndCorrectness:
    def test_all_approaches_agree_with_oracle_on_shared_workload(
        self, suite, scale, clustered_zipf_workload
    ):
        queries = list(clustered_zipf_workload)[:15]
        for name in ("FLAT-Ain1", "Grid-1fE", "RTree-Ain1", "Odyssey"):
            fork = suite.fork()
            approach = make_approach(name, fork, scale)
            approach.build()
            oracle = BruteForceScan(fork.catalog)
            for query in queries:
                assert result_keys(approach.query(query.box, query.dataset_ids)) == result_keys(
                    oracle.query(query.box, query.dataset_ids)
                ), f"{name} disagrees with the oracle on query {query.qid}"
