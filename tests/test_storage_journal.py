"""Unit tests for the crash-consistent manifest journal."""

from __future__ import annotations

import struct

import pytest

from repro.storage.errors import SimulatedCrash
from repro.storage.journal import RECORD_HEADER, ManifestJournal


def manifest(n: int) -> dict:
    return {"version": 1, "commit": n, "payload": list(range(n))}


class TestCommitAndRead:
    def test_empty_journal_reads_none(self, tmp_path):
        journal = ManifestJournal(tmp_path / "j.log")
        assert not journal.exists()
        assert journal.read_last() is None
        assert list(journal.records()) == []

    def test_last_commit_wins(self, tmp_path):
        journal = ManifestJournal(tmp_path / "j.log")
        for n in range(5):
            journal.commit(manifest(n))
        assert journal.read_last() == manifest(4)
        assert [r["commit"] for r in journal.records()] == [0, 1, 2, 3, 4]

    def test_reopened_journal_sees_committed_records(self, tmp_path):
        path = tmp_path / "j.log"
        ManifestJournal(path).commit(manifest(7))
        assert ManifestJournal(path).read_last() == manifest(7)

    def test_rejects_bad_compact_every(self, tmp_path):
        with pytest.raises(ValueError):
            ManifestJournal(tmp_path / "j.log", compact_every=0)


class TestTornAndCorruptTails:
    def test_torn_tail_discarded(self, tmp_path):
        path = tmp_path / "j.log"
        journal = ManifestJournal(path)
        journal.commit(manifest(1))
        journal.commit(manifest(2))
        blob = path.read_bytes()
        path.write_bytes(blob[:-3])  # tear the last record mid-payload
        assert ManifestJournal(path).read_last() == manifest(1)

    def test_torn_header_discarded(self, tmp_path):
        path = tmp_path / "j.log"
        journal = ManifestJournal(path)
        journal.commit(manifest(1))
        with path.open("ab") as handle:
            handle.write(b"\x05")  # lone byte: not even a full header
        assert ManifestJournal(path).read_last() == manifest(1)

    def test_corrupt_record_and_everything_after_discarded(self, tmp_path):
        path = tmp_path / "j.log"
        journal = ManifestJournal(path)
        journal.commit(manifest(1))
        offset_second = path.stat().st_size
        journal.commit(manifest(2))
        journal.commit(manifest(3))
        blob = bytearray(path.read_bytes())
        blob[offset_second + RECORD_HEADER.size] ^= 0xFF  # flip in record 2
        path.write_bytes(bytes(blob))
        assert ManifestJournal(path).read_last() == manifest(1)

    def test_garbage_length_prefix_discarded(self, tmp_path):
        path = tmp_path / "j.log"
        journal = ManifestJournal(path)
        journal.commit(manifest(1))
        with path.open("ab") as handle:
            handle.write(struct.pack("<II", 2**30, 0))  # absurd length
        assert ManifestJournal(path).read_last() == manifest(1)


class TestCompaction:
    def test_auto_compaction_bounds_the_file(self, tmp_path):
        path = tmp_path / "j.log"
        journal = ManifestJournal(path, compact_every=4)
        sizes = []
        for n in range(12):
            journal.commit(manifest(3))
            sizes.append(path.stat().st_size)
        single = len(ManifestJournal._encode(manifest(3)))
        # Every 4th commit collapses the file back to one record.
        assert sizes[3] == single and sizes[7] == single and sizes[11] == single
        assert max(sizes) <= 4 * single
        assert journal.read_last() == manifest(3)

    def test_explicit_rewrite(self, tmp_path):
        path = tmp_path / "j.log"
        journal = ManifestJournal(path)
        for n in range(6):
            journal.commit(manifest(n))
        journal.rewrite(manifest(99))
        assert path.stat().st_size == len(ManifestJournal._encode(manifest(99)))
        assert [r["commit"] for r in journal.records()] == [99]


def crash_at(point_to_crash):
    def hook(point):
        if point == point_to_crash:
            raise SimulatedCrash(point)

    return hook


class TestCrashPoints:
    def test_crash_before_commit_keeps_previous(self, tmp_path):
        path = tmp_path / "j.log"
        ManifestJournal(path).commit(manifest(1))
        journal = ManifestJournal(path, crash_hook=crash_at("journal.commit.start"))
        with pytest.raises(SimulatedCrash):
            journal.commit(manifest(2))
        assert ManifestJournal(path).read_last() == manifest(1)

    def test_crash_mid_commit_persists_torn_record(self, tmp_path):
        path = tmp_path / "j.log"
        ManifestJournal(path).commit(manifest(1))
        size_before = path.stat().st_size
        journal = ManifestJournal(path, crash_hook=crash_at("journal.commit.torn"))
        with pytest.raises(SimulatedCrash):
            journal.commit(manifest(2))
        assert path.stat().st_size > size_before  # the torn prefix landed
        assert ManifestJournal(path).read_last() == manifest(1)

    def test_crash_after_commit_keeps_new_record(self, tmp_path):
        path = tmp_path / "j.log"
        ManifestJournal(path).commit(manifest(1))
        journal = ManifestJournal(path, crash_hook=crash_at("journal.commit.end"))
        with pytest.raises(SimulatedCrash):
            journal.commit(manifest(2))
        assert ManifestJournal(path).read_last() == manifest(2)

    @pytest.mark.parametrize(
        "point", ["journal.rewrite.start", "journal.rewrite.before_rename"]
    )
    def test_crash_before_rename_keeps_old_journal(self, tmp_path, point):
        path = tmp_path / "j.log"
        old = ManifestJournal(path)
        for n in range(3):
            old.commit(manifest(n))
        journal = ManifestJournal(path, crash_hook=crash_at(point))
        with pytest.raises(SimulatedCrash):
            journal.rewrite(manifest(99))
        assert [r["commit"] for r in ManifestJournal(path).records()] == [0, 1, 2]

    def test_crash_after_rename_keeps_new_journal(self, tmp_path):
        path = tmp_path / "j.log"
        old = ManifestJournal(path)
        for n in range(3):
            old.commit(manifest(n))
        journal = ManifestJournal(path, crash_hook=crash_at("journal.rewrite.end"))
        with pytest.raises(SimulatedCrash):
            journal.rewrite(manifest(99))
        assert [r["commit"] for r in ManifestJournal(path).records()] == [99]

    def test_commit_after_torn_crash_recovers_cleanly(self, tmp_path):
        # A process that crashed mid-commit, restarted, and committed again
        # must not resurrect the torn tail.  read_last() skips it, and the
        # next compaction truncates it away.
        path = tmp_path / "j.log"
        journal = ManifestJournal(path, crash_hook=crash_at("journal.commit.torn"))
        with pytest.raises(SimulatedCrash):
            journal.commit(manifest(1))
        reopened = ManifestJournal(path, compact_every=2)
        reopened.commit(manifest(2))  # appended after the torn bytes...
        assert reopened.read_last() is None or reopened.read_last() == manifest(2)
        reopened.commit(manifest(3))  # ...compaction heals the file
        assert [r["commit"] for r in ManifestJournal(path).records()] == [3]
