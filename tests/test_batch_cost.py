"""Cost regression: a batch must never read more pages than sequential.

The batched engine reads every needed partition group at most once per
batch through the shared read set, and its replay phase performs exactly
the writes sequential execution would perform.  These tests pin that down
with the :class:`~repro.storage.disk.Disk` counters: for any workload and
any batch size, the batched run's ``pages_read`` is bounded by the
sequential run's, and overlapping workloads must show a strict saving.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import generate_workload
from repro.core.config import OdysseyConfig
from repro.core.odyssey import SpaceOdyssey
from repro.geometry.box import Box
from repro.storage.cost_model import IOStats


def _run_sequential(suite, workload, config) -> tuple[IOStats, SpaceOdyssey]:
    odyssey = SpaceOdyssey(suite.fork().catalog, config)
    for query in workload:
        odyssey.query(query.box, query.dataset_ids)
    return odyssey.disk.stats, odyssey


def _run_batched(suite, workload, config, batch_size) -> tuple[IOStats, SpaceOdyssey]:
    odyssey = SpaceOdyssey(suite.fork().catalog, config)
    queries = list(workload)
    for start in range(0, len(queries), batch_size):
        odyssey.query_batch(queries[start : start + batch_size])
    return odyssey.disk.stats, odyssey


MERGING_CONFIG = OdysseyConfig(
    merge_threshold=1, merge_partition_min_hits=1, merge_only_converged=False
)


@pytest.mark.parametrize("batch_size", [2, 5, 12, 64])
@pytest.mark.parametrize(
    "ranges,volume_fraction,seed",
    [
        ("uniform", 1e-3, 31),
        ("uniform", 5e-3, 32),
        ("clustered", 5e-3, 33),
    ],
)
def test_batch_never_reads_more_pages(
    master_suite, batch_size, ranges, volume_fraction, seed
):
    workload = generate_workload(
        master_suite.universe,
        master_suite.catalog.dataset_ids(),
        24,
        seed=seed,
        datasets_per_query=3,
        volume_fraction=volume_fraction,
        ranges=ranges,
        ids_distribution="zipf",
    )
    seq_stats, _ = _run_sequential(master_suite, workload, MERGING_CONFIG)
    batch_stats, _ = _run_batched(master_suite, workload, MERGING_CONFIG, batch_size)
    assert batch_stats.pages_read <= seq_stats.pages_read
    # Writes are replayed identically, so they must match exactly.
    assert batch_stats.pages_written == seq_stats.pages_written


def test_overlapping_batch_strictly_saves_pages(master_suite):
    """Repeating the same region in one batch must hit the shared read set."""
    universe = master_suite.universe
    region = Box.cube(universe.center, universe.side(0) * 0.15).clamp(universe)
    queries = [(region, (0, 1, 2))] * 6
    config = OdysseyConfig()  # default thresholds; no merging for |C|=3 yet (mt=2)
    seq = SpaceOdyssey(master_suite.fork().catalog, config)
    for box, ids in queries:
        seq.query(box, ids)
    batched = SpaceOdyssey(master_suite.fork().catalog, config)
    batched.query_batch(queries)
    assert batched.disk.stats.pages_read < seq.disk.stats.pages_read


@pytest.mark.parametrize("batch_size", [3, 10])
def test_batch_cost_bound_holds_under_eviction_pressure(master_suite, batch_size):
    workload = generate_workload(
        master_suite.universe,
        master_suite.catalog.dataset_ids(),
        30,
        seed=41,
        datasets_per_query=3,
        volume_fraction=5e-3,
        ranges="clustered",
        ids_distribution="heavy_hitter",
    )
    config = OdysseyConfig(
        merge_threshold=1,
        min_merge_combination=2,
        merge_partition_min_hits=1,
        merge_only_converged=False,
        merge_space_budget_pages=5,
    )
    seq_stats, seq = _run_sequential(master_suite, workload, config)
    batch_stats, batched = _run_batched(master_suite, workload, config, batch_size)
    assert batch_stats.pages_read <= seq_stats.pages_read
    assert batched.summary() == seq.summary()
