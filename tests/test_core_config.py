"""Unit tests for OdysseyConfig."""

from __future__ import annotations

import pytest

from repro.core.config import OdysseyConfig


class TestDefaults:
    def test_paper_defaults(self):
        config = OdysseyConfig()
        assert config.refinement_threshold == 4.0
        assert config.partitions_per_level == 64
        assert config.merge_threshold == 2
        assert config.min_merge_combination == 3
        assert config.enable_merging

    def test_without_merging(self):
        config = OdysseyConfig().without_merging()
        assert not config.enable_merging
        assert config.refinement_threshold == 4.0


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"refinement_threshold": 0},
            {"partitions_per_level": 1},
            {"merge_threshold": -1},
            {"min_merge_combination": 0},
            {"merge_space_budget_pages": 0},
            {"refine_levels_per_query": -1},
            {"max_depth": 0},
            {"merge_partition_min_hits": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            OdysseyConfig(**kwargs)


class TestSplitsPerDimension:
    def test_octree_in_3d(self):
        assert OdysseyConfig(partitions_per_level=8).splits_per_dimension(3) == 2

    def test_paper_ppl_in_3d(self):
        assert OdysseyConfig(partitions_per_level=64).splits_per_dimension(3) == 4

    def test_quadtree_in_2d(self):
        assert OdysseyConfig(partitions_per_level=4).splits_per_dimension(2) == 2
        assert OdysseyConfig(partitions_per_level=16).splits_per_dimension(2) == 4

    def test_non_perfect_power_rejected(self):
        with pytest.raises(ValueError):
            OdysseyConfig(partitions_per_level=10).splits_per_dimension(3)

    def test_bad_dimension(self):
        with pytest.raises(ValueError):
            OdysseyConfig().splits_per_dimension(0)


class TestConvergenceFormula:
    def test_already_converged(self):
        config = OdysseyConfig(refinement_threshold=4.0, partitions_per_level=64)
        assert config.queries_to_full_refinement(partition_volume=3.0, query_volume=1.0) == 0

    def test_paper_formula(self):
        # log_ppl(Vp / (Vq * rt)): Vp = 64^2 * Vq * rt needs exactly 2 queries.
        config = OdysseyConfig(refinement_threshold=4.0, partitions_per_level=64)
        assert config.queries_to_full_refinement(64 * 64 * 4.0, 1.0) == 2

    def test_larger_ppl_converges_faster(self):
        small = OdysseyConfig(partitions_per_level=8)
        large = OdysseyConfig(partitions_per_level=64)
        volume = 8**6 * 4.0
        assert large.queries_to_full_refinement(volume, 1.0) <= small.queries_to_full_refinement(
            volume, 1.0
        )

    def test_invalid_volumes(self):
        with pytest.raises(ValueError):
            OdysseyConfig().queries_to_full_refinement(0.0, 1.0)
