"""Unit tests for the Box primitive."""

from __future__ import annotations

import math

import pytest

from repro.geometry.box import Box


class TestConstruction:
    def test_basic_box(self):
        box = Box((0.0, 0.0), (2.0, 3.0))
        assert box.dimension == 2
        assert box.volume() == 6.0
        assert box.center == (1.0, 1.5)
        assert box.extents == (2.0, 3.0)

    def test_from_corners_casts_to_float(self):
        box = Box.from_corners([0, 1, 2], [1, 2, 3])
        assert box.lo == (0.0, 1.0, 2.0)
        assert box.hi == (1.0, 2.0, 3.0)

    def test_from_center(self):
        box = Box.from_center((5.0, 5.0), (2.0, 4.0))
        assert box.lo == (4.0, 3.0)
        assert box.hi == (6.0, 7.0)

    def test_cube(self):
        box = Box.cube((1.0, 1.0, 1.0), 2.0)
        assert box.volume() == pytest.approx(8.0)

    def test_unit(self):
        assert Box.unit(3).volume() == 1.0
        with pytest.raises(ValueError):
            Box.unit(0)

    def test_rejects_mismatched_corners(self):
        with pytest.raises(ValueError):
            Box((0.0,), (1.0, 2.0))

    def test_rejects_inverted_box(self):
        with pytest.raises(ValueError):
            Box((1.0, 0.0), (0.0, 1.0))

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            Box((math.nan,), (1.0,))

    def test_rejects_zero_dimensional(self):
        with pytest.raises(ValueError):
            Box((), ())

    def test_bounding(self):
        boxes = [Box((0.0, 0.0), (1.0, 1.0)), Box((2.0, -1.0), (3.0, 0.5))]
        bound = Box.bounding(boxes)
        assert bound.lo == (0.0, -1.0)
        assert bound.hi == (3.0, 1.0)

    def test_bounding_empty_raises(self):
        with pytest.raises(ValueError):
            Box.bounding([])

    def test_degenerate_detection(self):
        assert Box((0.0, 0.0), (0.0, 1.0)).is_degenerate()
        assert not Box((0.0, 0.0), (1.0, 1.0)).is_degenerate()


class TestPredicates:
    def test_intersects_overlapping(self):
        a = Box((0.0, 0.0), (2.0, 2.0))
        b = Box((1.0, 1.0), (3.0, 3.0))
        assert a.intersects(b)
        assert b.intersects(a)

    def test_intersects_touching_is_true(self):
        a = Box((0.0, 0.0), (1.0, 1.0))
        b = Box((1.0, 0.0), (2.0, 1.0))
        assert a.intersects(b)

    def test_intersects_disjoint_is_false(self):
        a = Box((0.0, 0.0), (1.0, 1.0))
        b = Box((1.5, 1.5), (2.0, 2.0))
        assert not a.intersects(b)

    def test_intersects_dimension_mismatch(self):
        with pytest.raises(ValueError):
            Box((0.0,), (1.0,)).intersects(Box((0.0, 0.0), (1.0, 1.0)))

    def test_contains_point(self):
        box = Box((0.0, 0.0), (1.0, 1.0))
        assert box.contains_point((0.5, 0.5))
        assert box.contains_point((0.0, 1.0))  # boundary is inside
        assert not box.contains_point((1.1, 0.5))

    def test_contains_box(self):
        outer = Box((0.0, 0.0), (10.0, 10.0))
        inner = Box((1.0, 1.0), (2.0, 2.0))
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)


class TestDerivedBoxes:
    def test_intersection(self):
        a = Box((0.0, 0.0), (2.0, 2.0))
        b = Box((1.0, 1.0), (3.0, 3.0))
        overlap = a.intersection(b)
        assert overlap == Box((1.0, 1.0), (2.0, 2.0))

    def test_intersection_disjoint_is_none(self):
        a = Box((0.0, 0.0), (1.0, 1.0))
        b = Box((2.0, 2.0), (3.0, 3.0))
        assert a.intersection(b) is None

    def test_union(self):
        a = Box((0.0, 0.0), (1.0, 1.0))
        b = Box((2.0, 2.0), (3.0, 3.0))
        assert a.union(b) == Box((0.0, 0.0), (3.0, 3.0))

    def test_expand_scalar(self):
        box = Box((1.0, 1.0), (2.0, 2.0)).expand(0.5)
        assert box == Box((0.5, 0.5), (2.5, 2.5))

    def test_expand_per_dimension(self):
        box = Box((1.0, 1.0), (2.0, 2.0)).expand((0.0, 1.0))
        assert box == Box((1.0, 0.0), (2.0, 3.0))

    def test_expand_rejects_negative(self):
        with pytest.raises(ValueError):
            Box((0.0,), (1.0,)).expand(-1.0)

    def test_clamp(self):
        universe = Box((0.0, 0.0), (10.0, 10.0))
        box = Box((-5.0, 5.0), (3.0, 20.0)).clamp(universe)
        assert box == Box((0.0, 5.0), (3.0, 10.0))

    def test_clamp_fully_outside_yields_degenerate_slab(self):
        universe = Box((0.0,), (10.0,))
        box = Box((20.0,), (30.0,)).clamp(universe)
        assert box.lo == (10.0,)
        assert box.hi == (10.0,)

    def test_translate(self):
        box = Box((0.0, 0.0), (1.0, 1.0)).translate((2.0, 3.0))
        assert box == Box((2.0, 3.0), (3.0, 4.0))


class TestGridSplitting:
    def test_split_grid_covers_parent_exactly(self):
        box = Box((0.0, 0.0), (4.0, 4.0))
        children = box.split_grid(2)
        assert len(children) == 4
        assert sum(child.volume() for child in children) == pytest.approx(box.volume())
        assert Box.bounding(children) == box

    def test_split_grid_counts_per_dimension(self):
        box = Box((0.0, 0.0), (4.0, 9.0))
        children = box.split_grid((2, 3))
        assert len(children) == 6

    def test_split_grid_rejects_bad_counts(self):
        box = Box((0.0, 0.0), (1.0, 1.0))
        with pytest.raises(ValueError):
            box.split_grid(0)
        with pytest.raises(ValueError):
            box.split_grid((2, 2, 2))

    def test_child_index_consistent_with_split(self):
        box = Box((0.0, 0.0, 0.0), (8.0, 8.0, 8.0))
        children = box.split_grid(2)
        for index, child in enumerate(children):
            assert box.child_index(child.center, 2) == index

    def test_child_index_clamps_boundary_points(self):
        box = Box((0.0,), (1.0,))
        assert box.child_index((1.0,), 4) == 3
        assert box.child_index((-0.5,), 4) == 0

    def test_grid_cells_overlapping_matches_bruteforce(self):
        box = Box((0.0, 0.0), (10.0, 10.0))
        query = Box((2.4, 7.1), (5.0, 9.9))
        counts = (5, 4)
        expected = {
            i for i, child in enumerate(box.split_grid(counts)) if child.intersects(query)
        }
        assert set(box.grid_cells_overlapping(query, counts)) == expected

    def test_grid_cells_overlapping_outside_query_is_empty(self):
        box = Box((0.0, 0.0), (1.0, 1.0))
        query = Box((5.0, 5.0), (6.0, 6.0))
        assert list(box.grid_cells_overlapping(query, 4)) == []

    def test_last_cell_snaps_to_upper_bound(self):
        box = Box((0.0,), (1.0,))
        children = box.split_grid(3)
        assert children[-1].hi == (1.0,)
